package rc

import (
	"math"
	"testing"
)

// TestPerturbValidate pins the perturbation guard: every scalar must be
// positive and finite, NaN included (NaN slides through `> 0`? no — the
// check is written `!(v > 0)`, which catches NaN too; this table proves
// it stays that way).
func TestPerturbValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Perturb
		ok   bool
	}{
		{"nominal", Nominal(), true},
		{"corner", Perturb{R: 1.1, C: 0.9, Threshold: 1.15}, true},
		{"zero R", Perturb{R: 0, C: 1, Threshold: 1}, false},
		{"negative C", Perturb{R: 1, C: -1, Threshold: 1}, false},
		{"NaN threshold", Perturb{R: 1, C: 1, Threshold: math.NaN()}, false},
		{"inf R", Perturb{R: math.Inf(1), C: 1, Threshold: 1}, false},
		{"negative inf C", Perturb{R: 1, C: math.Inf(-1), Threshold: 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("invalid perturbation accepted")
			}
		})
	}
	if !Nominal().IsNominal() {
		t.Error("Nominal() not IsNominal")
	}
	if (Perturb{R: 1, C: 1.0000001, Threshold: 1}).IsNominal() {
		t.Error("perturbed C reported nominal")
	}
}

// TestScaledReplicaNominalIsExact: a ×1.0 perturbation is the identity in
// floating point, so the nominal ScaledReplica must be bit-identical to a
// plain replica — and shares the base topology outright.
func TestScaledReplicaNominalIsExact(t *testing.T) {
	g := buildChain(t)
	cs := emptySet(t)
	base, err := NewEvaluator(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	nom, err := base.ScaledReplica(Nominal())
	if err != nil {
		t.Fatal(err)
	}
	if nom.t != base.t {
		t.Error("nominal ScaledReplica rebuilt the topology instead of sharing it")
	}
	base.SetAllSizes(0.8)
	nom.SetAllSizes(0.8)
	base.RecomputeSerial()
	nom.RecomputeSerial()
	for i := 0; i < g.NumNodes(); i++ {
		if nom.A[i] != base.A[i] || nom.C[i] != base.C[i] || nom.D[i] != base.D[i] {
			t.Fatalf("node %d: nominal replica diverged from base", i)
		}
	}
	if _, err := base.ScaledReplica(Perturb{R: 0, C: 1, Threshold: 1}); err == nil {
		t.Error("ScaledReplica accepted a zero scalar")
	}
}

// TestScaledBatchSharesStructure: scaled replicas share the structural
// arrays (coupling CSR, level buckets) with the base topology — the
// memory contract that makes a Monte-Carlo batch cost constant stripes,
// not elaborations.
func TestScaledBatchSharesStructure(t *testing.T) {
	g := buildChain(t)
	cs := emptySet(t)
	b, err := NewScaledBatch(g, cs, []Perturb{Nominal(), {R: 1.1, C: 0.9, Threshold: 1.2}})
	if err != nil {
		t.Fatal(err)
	}
	e0, e1 := b.Ev(0), b.Ev(1)
	if e0.t != b.t {
		t.Error("nominal batch replica did not share the base topology")
	}
	if e1.t == b.t {
		t.Error("perturbed batch replica shared the base topology")
	}
	if &e1.t.lvlNodes[0] != &b.t.lvlNodes[0] {
		t.Error("perturbed topology copied the level buckets")
	}
	if _, err := NewScaledBatch(g, cs, nil); err == nil {
		t.Error("NewScaledBatch accepted an empty perturbation set")
	}
	if _, err := NewScaledBatch(g, cs, []Perturb{{R: math.NaN(), C: 1, Threshold: 1}}); err == nil {
		t.Error("NewScaledBatch accepted a NaN scalar")
	}
}

// FuzzVariation is the technology-perturbation adversary: for every DAG
// the bytes describe it draws K random perturbation scalar triples
// (nominal included), builds a scaled batch and K solo scaled replicas
// with identical sizes, and demands exact bitwise equality of every
// derived array after batched passes over arbitrary replica subsets
// (retirement) under hostile Runner chunkings — the rc.Batch contract
// extended over per-replica topologies, which is the foundation of the
// Monte-Carlo mode's lockstep ≡ solo bit-identity.
func FuzzVariation(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 121, 98})
	f.Add([]byte("perturbed replicas must match scaled solos bit for bit"))
	f.Add([]byte{0, 128, 0, 128, 0, 128, 0, 128, 0, 128, 0, 128, 0, 128})
	f.Add([]byte{42, 42, 42, 42, 42, 42, 42, 42, 42, 42, 42, 42, 42, 42})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, cs := dagFromBytes(t, data)
		if g == nil {
			return
		}
		feed := &byteFeed{data: data}
		k := 1 + feed.next()%4
		perturbs := make([]Perturb, k)
		for r := range perturbs {
			if feed.next()%4 == 0 {
				perturbs[r] = Nominal() // exercise the shared-base-topo path
				continue
			}
			// Scalars in [0.5, 1.49] — the corner/Monte-Carlo regime.
			perturbs[r] = Perturb{
				R:         0.5 + float64(feed.next()%100)/100,
				C:         0.5 + float64(feed.next()%100)/100,
				Threshold: 0.5 + float64(feed.next()%100)/100,
			}
		}
		b, err := NewScaledBatch(g, cs, perturbs)
		if err != nil {
			t.Fatal(err) // generator only couples wires, so this must build
		}
		base, err := NewEvaluator(g, cs)
		if err != nil {
			t.Fatal(err)
		}
		nn := g.NumNodes()
		solos := make([]*Evaluator, k)
		lambdas := make([][]float64, k)
		for r := 0; r < k; r++ {
			solo, err := base.ScaledReplica(perturbs[r])
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < nn; i++ {
				c := g.Comp(i)
				if !c.Kind.Sizable() {
					continue
				}
				v := c.Lo + float64(feed.next()%32)/31*(c.Hi-c.Lo)
				solo.X[i] = v
				b.Ev(r).X[i] = v
			}
			solos[r] = solo
			lam := make([]float64, nn)
			for i := range lam {
				lam[i] = float64((i*3+r*7+len(data))%13) / 5
			}
			lambdas[r] = lam
		}
		subset := make([]int, 0, k)
		for r := 0; r < k; r++ {
			if feed.next()%2 == 0 {
				subset = append(subset, r)
			}
		}
		if len(subset) == 0 {
			subset = append(subset, feed.next()%k)
		}
		full := make([]int, k)
		for r := range full {
			full[r] = r
		}
		for _, parts := range []int{1, 3, 5} {
			if parts > 1 {
				b.SetRunner(chunkedRunner(parts))
			}
			for v, reps := range [][]int{subset, full} {
				dsts := make([][]float64, len(reps))
				lams := make([][]float64, len(reps))
				for n, r := range reps {
					dsts[n] = make([]float64, nn)
					lams[n] = lambdas[r]
				}
				if v == 0 {
					b.RecomputeAll(reps)
					b.UpstreamResistanceAll(reps, lams, dsts)
				} else {
					b.SweepAll(reps, lams, dsts)
				}
				for n, r := range reps {
					solo := solos[r]
					solo.RecomputeSerial()
					ref := make([]float64, nn)
					solo.UpstreamResistanceSerial(lambdas[r], ref)
					e := b.Ev(r)
					for i := 0; i < nn; i++ {
						if e.B[i] != solo.B[i] || e.C[i] != solo.C[i] || e.CPr[i] != solo.CPr[i] ||
							e.D[i] != solo.D[i] || e.A[i] != solo.A[i] ||
							e.Cap[i] != solo.Cap[i] || e.RPs[i] != solo.RPs[i] {
							t.Fatalf("parts=%d replica %d (p=%+v) node %d: batch (B=%.17g C=%.17g D=%.17g A=%.17g) != scaled solo (B=%.17g C=%.17g D=%.17g A=%.17g)",
								parts, r, perturbs[r], i, e.B[i], e.C[i], e.D[i], e.A[i],
								solo.B[i], solo.C[i], solo.D[i], solo.A[i])
						}
						if e.CNbr != nil && e.CNbr[i] != solo.CNbr[i] {
							t.Fatalf("parts=%d replica %d node %d: CNbr %.17g != %.17g",
								parts, r, i, e.CNbr[i], solo.CNbr[i])
						}
						if dsts[n][i] != ref[i] {
							t.Fatalf("parts=%d replica %d node %d: batch R=%.17g != scaled solo R=%.17g",
								parts, r, i, dsts[n][i], ref[i])
						}
					}
				}
			}
		}
	})
}
