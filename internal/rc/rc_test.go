package rc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/coupling"
)

func emptySet(t testing.TB) *coupling.Set {
	t.Helper()
	s, err := coupling.NewSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// chain builds D(100Ω) → w(r̂10,ĉ2,f1) → g(r̂20,ĉ0.5) → w2(r̂5,ĉ1,f0.5) → 10fF.
func chain(t testing.TB) (*circuit.Graph, map[string]int) {
	t.Helper()
	b := circuit.NewBuilder()
	d := b.AddDriver("D", 100)
	w := b.AddWire("w", 10, 2, 1, 50, 1, 0.1, 10)
	g := b.AddGate("g", 20, 0.5, 4, 0.1, 10)
	w2 := b.AddWire("w2", 5, 1, 0.5, 25, 1, 0.1, 10)
	b.Connect(d, w)
	b.Connect(w, g)
	b.Connect(g, w2)
	b.MarkOutput(w2, 10)
	gr, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for i := 0; i < gr.NumNodes(); i++ {
		byName[gr.Comp(i).Name] = i
	}
	return gr, byName
}

func TestChainHandComputed(t *testing.T) {
	g, id := chain(t)
	e, err := NewEvaluator(g, emptySet(t))
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, g.NumNodes())
	x[id["w"]], x[id["g"]], x[id["w2"]] = 2, 1, 0.5
	if err := e.SetSizes(x); err != nil {
		t.Fatal(err)
	}
	e.Recompute()

	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	approx("cap(w)", e.Cap[id["w"]], 5)   // 2·2+1
	approx("cap(g)", e.Cap[id["g"]], 0.5) // 0.5·1
	approx("cap(w2)", e.Cap[id["w2"]], 1) // 1·0.5+0.5
	approx("B(w2)", e.B[id["w2"]], 10)    // load
	approx("B(g)", e.B[id["g"]], 11)      // c_w2 + B(w2)
	approx("B(w)", e.B[id["w"]], 0.5)     // gate input cap
	approx("B(D)", e.B[id["D"]], 5.5)     // c_w + B(w)
	approx("C(w)", e.C[id["w"]], 3)       // B + f/2 + ĉx/2 = 0.5+0.5+2
	approx("C(g)", e.C[id["g"]], 11)      // = B
	approx("C(w2)", e.C[id["w2"]], 10.5)  // 10+0.25+0.25
	approx("C'(w)", e.CPr[id["w"]], 1)    // B + f/2
	approx("C'(w2)", e.CPr[id["w2"]], 10.25)
	approx("D(D)", e.D[id["D"]], 0.55)    // 100·5.5·1e-3 ps
	approx("D(w)", e.D[id["w"]], 0.015)   // (10/2)·3·1e-3
	approx("D(g)", e.D[id["g"]], 0.22)    // 20·11·1e-3
	approx("D(w2)", e.D[id["w2"]], 0.105) // (5/0.5)·10.5·1e-3
	approx("a(w2)", e.A[id["w2"]], 0.89)  // 0.55+0.015+0.22+0.105
	approx("MaxArrival", e.MaxArrival(), 0.89)
	approx("TotalCap", e.TotalCap(), 6.5)
	approx("Area", e.Area(), 2+4+0.5) // α·x: 1·2 + 4·1 + 1·0.5
}

func TestChainCriticalPath(t *testing.T) {
	g, id := chain(t)
	e, _ := NewEvaluator(g, emptySet(t))
	e.SetAllSizes(1)
	e.Recompute()
	cp := e.CriticalPath()
	want := []int{id["D"], id["w"], id["g"], id["w2"]}
	if len(cp) != len(want) {
		t.Fatalf("critical path %v, want %v", cp, want)
	}
	for i := range cp {
		if cp[i] != want[i] {
			t.Fatalf("critical path %v, want %v", cp, want)
		}
	}
}

func TestUpstreamResistanceStages(t *testing.T) {
	g, id := chain(t)
	e, _ := NewEvaluator(g, emptySet(t))
	x := make([]float64, g.NumNodes())
	x[id["w"]], x[id["g"]], x[id["w2"]] = 2, 1, 0.5
	e.SetSizes(x)
	e.Recompute()
	lambda := make([]float64, g.NumNodes())
	for i := range lambda {
		lambda[i] = 1
	}
	r := make([]float64, g.NumNodes())
	e.UpstreamResistance(lambda, r)
	const rc = 1e-3
	if math.Abs(r[id["w"]]-100*rc) > 1e-12 {
		t.Errorf("R(w) = %g, want driver resistance 0.1", r[id["w"]])
	}
	if math.Abs(r[id["g"]]-(100+5)*rc) > 1e-12 {
		t.Errorf("R(g) = %g, want 0.105", r[id["g"]])
	}
	// Stage decoupling: w2 sees only the gate, not the upstream wire/driver.
	if math.Abs(r[id["w2"]]-20*rc) > 1e-12 {
		t.Errorf("R(w2) = %g, want 0.02 (gate only)", r[id["w2"]])
	}
	// Doubling λ on the gate doubles only w2's upstream resistance.
	lambda[id["g"]] = 2
	e.UpstreamResistance(lambda, r)
	if math.Abs(r[id["w2"]]-40*rc) > 1e-12 {
		t.Errorf("R(w2) with λg=2 = %g, want 0.04", r[id["w2"]])
	}
}

// coupledPair builds two parallel driver→wire→load stages with one
// coupling pair between the wires.
func coupledPair(t testing.TB, weight float64) (*circuit.Graph, map[string]int, *coupling.Set) {
	t.Helper()
	b := circuit.NewBuilder()
	d1 := b.AddDriver("D1", 100)
	d2 := b.AddDriver("D2", 100)
	wa := b.AddWire("wa", 10, 2, 1, 50, 1, 0.1, 10)
	wb := b.AddWire("wb", 10, 2, 1, 50, 1, 0.1, 10)
	b.Connect(d1, wa)
	b.Connect(d2, wb)
	b.MarkOutput(wa, 5)
	b.MarkOutput(wb, 5)
	g, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for i := 0; i < g.NumNodes(); i++ {
		byName[g.Comp(i).Name] = i
	}
	cs, err := coupling.NewSet([]coupling.Pair{{
		I: min(byName["wa"], byName["wb"]), J: max(byName["wa"], byName["wb"]),
		CTilde: 8, Dist: 2, Weight: weight,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return g, byName, cs
}

func TestCouplingEntersOwnDelayOnly(t *testing.T) {
	g, id, cs := coupledPair(t, 1)
	e, err := NewEvaluator(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	e.SetAllSizes(1)
	e.Recompute()
	wa, wb := id["wa"], id["wb"]
	// ĉ = 8/(2·2) = 2. Coupling on wa: c̃ + ĉ(xa+xb) = 8 + 2·2 = 12.
	// C(wa) = B(5) + f/2(0.5) + ĉx/2(1) + coupling(12) = 18.5.
	if math.Abs(e.C[wa]-18.5) > 1e-9 {
		t.Errorf("C(wa) = %g, want 18.5", e.C[wa])
	}
	// The driver's load must NOT include the coupling (paper-consistent
	// derivative; DESIGN.md §2): B(D1) = c_wa + B(wa) = 3 + 5 = 8.
	if math.Abs(e.C[id["D1"]]-8) > 1e-9 {
		t.Errorf("C(D1) = %g, want 8 (no coupling upstream)", e.C[id["D1"]])
	}
	// Symmetric for wb.
	if math.Abs(e.C[wb]-18.5) > 1e-9 {
		t.Errorf("C(wb) = %g, want 18.5", e.C[wb])
	}
	// C′ excludes neighbour and own-size terms: B + f/2 + c̃ = 5+0.5+8.
	if math.Abs(e.CPr[wa]-13.5) > 1e-9 {
		t.Errorf("C'(wa) = %g, want 13.5", e.CPr[wa])
	}
	// CNbr = ĉ·x_b = 2.
	if math.Abs(e.CNbr[wa]-2) > 1e-9 {
		t.Errorf("CNbr(wa) = %g, want 2", e.CNbr[wa])
	}
	_ = wb
}

func TestNoiseTotals(t *testing.T) {
	g, _, cs := coupledPair(t, 1)
	e, _ := NewEvaluator(g, cs)
	e.SetAllSizes(1)
	e.Recompute()
	// One pair, ĉ = 2: linear noise = ĉ(xa+xb) = 4.
	if got := e.NoiseLinear(); math.Abs(got-4) > 1e-9 {
		t.Errorf("NoiseLinear = %g, want 4", got)
	}
	// Exact noise = c̃/(1−(xa+xb)/(2d)) = 8/(1−0.5) = 16.
	if got := e.NoiseExact(); math.Abs(got-16) > 1e-9 {
		t.Errorf("NoiseExact = %g, want 16", got)
	}
}

func TestCouplingWeightScales(t *testing.T) {
	g, id, cs2 := coupledPair(t, 2)
	e2, _ := NewEvaluator(g, cs2)
	e2.SetAllSizes(1)
	e2.Recompute()
	// Weight 2 doubles the coupling contribution: C = 6.5 + 24 = 30.5.
	if math.Abs(e2.C[id["wa"]]-30.5) > 1e-9 {
		t.Errorf("C(wa) weight2 = %g, want 30.5", e2.C[id["wa"]])
	}
	if got := e2.NoiseLinear(); math.Abs(got-8) > 1e-9 {
		t.Errorf("NoiseLinear weight2 = %g, want 8", got)
	}
}

func TestNeighbourSizeAffectsOwnDelay(t *testing.T) {
	g, id, cs := coupledPair(t, 1)
	e, _ := NewEvaluator(g, cs)
	e.SetAllSizes(1)
	e.Recompute()
	d1 := e.D[id["wa"]]
	// Growing the neighbour increases wa's coupling load and delay.
	e.X[id["wb"]] = 4
	e.Recompute()
	d2 := e.D[id["wa"]]
	if d2 <= d1 {
		t.Errorf("delay(wa) %g -> %g after growing neighbour, want increase", d1, d2)
	}
}

func TestRequiredTimes(t *testing.T) {
	g, id := chain(t)
	e, _ := NewEvaluator(g, emptySet(t))
	e.SetAllSizes(1)
	e.Recompute()
	const a0 = 100.0
	req := e.RequiredTimes(a0)
	// Output wire w2: required = a0.
	if math.Abs(req[id["w2"]]-a0) > 1e-9 {
		t.Errorf("req(w2) = %g, want %g", req[id["w2"]], a0)
	}
	// Gate: required = a0 − D(w2).
	want := a0 - e.D[id["w2"]]
	if math.Abs(req[id["g"]]-want) > 1e-9 {
		t.Errorf("req(g) = %g, want %g", req[id["g"]], want)
	}
	// Slack at sink equals a0 − arrival.
	slack := req[id["w2"]] - e.A[id["w2"]]
	if math.Abs(slack-(a0-e.MaxArrival())) > 1e-9 {
		t.Errorf("slack = %g, want %g", slack, a0-e.MaxArrival())
	}
}

func TestSetSizesClampsBounds(t *testing.T) {
	g, id := chain(t)
	e, _ := NewEvaluator(g, emptySet(t))
	x := make([]float64, g.NumNodes())
	x[id["w"]] = 99 // above Hi=10
	x[id["g"]] = 0  // below Lo=0.1
	e.SetSizes(x)
	if e.X[id["w"]] != 10 {
		t.Errorf("x(w) = %g, want clamped to 10", e.X[id["w"]])
	}
	if e.X[id["g"]] != 0.1 {
		t.Errorf("x(g) = %g, want clamped to 0.1", e.X[id["g"]])
	}
	if err := e.SetSizes([]float64{1}); err == nil {
		t.Error("SetSizes accepted wrong-length vector")
	}
}

func TestEvaluatorRejectsNonWireCoupling(t *testing.T) {
	g, id := chain(t)
	cs, err := coupling.NewSet([]coupling.Pair{{
		I: min(id["g"], id["w2"]), J: max(id["g"], id["w2"]),
		CTilde: 1, Dist: 1, Weight: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEvaluator(g, cs); err == nil {
		t.Error("coupling on a gate accepted")
	}
}

// Property: upstream loads B are monotone in any component size, delays are
// positive, and arrival times are monotone along edges.
func TestPropertyRCInvariants(t *testing.T) {
	g, id := chain(t)
	e, _ := NewEvaluator(g, emptySet(t))
	f := func(xwRaw, xgRaw, xw2Raw float64) bool {
		clamp := func(v float64) float64 {
			v = math.Abs(math.Mod(v, 9.9)) + 0.1
			return v
		}
		x := make([]float64, g.NumNodes())
		x[id["w"]], x[id["g"]], x[id["w2"]] = clamp(xwRaw), clamp(xgRaw), clamp(xw2Raw)
		e.SetSizes(x)
		e.Recompute()
		bBefore := e.B[id["D"]]
		for i := 1; i < g.NumNodes()-1; i++ {
			if e.D[i] < 0 {
				return false
			}
			for _, j := range g.In(i) {
				if e.A[i] < e.A[j]-1e-12 {
					return false
				}
			}
		}
		// Growing the first wire grows the driver's load.
		x[id["w"]] += 1
		e.SetSizes(x)
		e.Recompute()
		return e.B[id["D"]] > bBefore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMemoryLinear(t *testing.T) {
	g, _ := chain(t)
	e, _ := NewEvaluator(g, emptySet(t))
	want := 9*g.NumNodes()*8 + (g.NumLevels()+1+g.NumNodes()-2)*4
	if e.MemoryBytes() != want {
		t.Errorf("MemoryBytes = %d, want %d", e.MemoryBytes(), want)
	}
}

// randomDAG builds a random multi-stage circuit for fuzzing Recompute
// against a slow reference implementation of C via explicit Downstream sets.
func randomDAG(t testing.TB, seed int64) *circuit.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := circuit.NewBuilder()
	nd := 1 + rng.Intn(3)
	var drivers []int
	for i := 0; i < nd; i++ {
		drivers = append(drivers, b.AddDriver("d", 50+rng.Float64()*100))
	}
	var sources []int // nodes that can drive new wires (drivers, gates)
	sources = append(sources, drivers...)
	used := map[int]bool{}
	var allGates []int
	for layer := 0; layer < 2+rng.Intn(3); layer++ {
		gates := 1 + rng.Intn(3)
		var newGates []int
		for gi := 0; gi < gates; gi++ {
			g := b.AddGate("g", 5+rng.Float64()*20, 0.1+rng.Float64(), 1+rng.Float64()*7, 0.1, 10)
			fanin := 1 + rng.Intn(min(3, len(sources)))
			perm := rng.Perm(len(sources))
			for fi := 0; fi < fanin; fi++ {
				w := b.AddWire("w", 1+rng.Float64()*10, 0.2+rng.Float64(), rng.Float64(), 10+rng.Float64()*90, 1+rng.Float64(), 0.1, 10)
				b.Connect(sources[perm[fi]], w)
				b.Connect(w, g)
				used[sources[perm[fi]]] = true
			}
			newGates = append(newGates, g)
		}
		sources = append(sources, newGates...)
		allGates = append(allGates, newGates...)
	}
	for _, g := range allGates {
		if used[g] {
			continue
		}
		w := b.AddWire("wo", 1+rng.Float64()*5, 0.2+rng.Float64(), rng.Float64(), 10+rng.Float64()*40, 1, 0.1, 10)
		b.Connect(g, w)
		b.MarkOutput(w, 5+rng.Float64()*30)
	}
	// Drivers that never got picked as sources still need fan-out.
	for _, d := range drivers {
		if used[d] {
			continue
		}
		w := b.AddWire("wd", 1+rng.Float64()*5, 0.2+rng.Float64(), rng.Float64(), 10+rng.Float64()*40, 1, 0.1, 10)
		b.Connect(d, w)
		b.MarkOutput(w, 5+rng.Float64()*30)
	}
	gr, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return gr
}

// TestRecomputeMatchesDownstreamDefinition cross-checks the linear-pass C
// against a quadratic reference built from Graph.Downstream.
func TestRecomputeMatchesDownstreamDefinition(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := randomDAG(t, seed)
		e, err := NewEvaluator(g, emptySet(t))
		if err != nil {
			t.Fatal(err)
		}
		e.SetAllSizes(0.5 + float64(seed)*0.2)
		e.Recompute()
		for i := 1; i < g.NumNodes()-1; i++ {
			c := g.Comp(i)
			ref := 0.0
			for _, u := range g.Downstream(i) {
				cu := g.Comp(u)
				switch {
				case u == i && cu.Kind == circuit.Wire:
					ref += e.Cap[u]/2 + cu.Load
				case u == i:
					ref += cu.Load
				case cu.Kind == circuit.Wire:
					ref += e.Cap[u] + cu.Load
				default: // gate boundary
					ref += e.Cap[u]
				}
				_ = c
			}
			if math.Abs(ref-e.C[i]) > 1e-6*(1+math.Abs(ref)) {
				t.Fatalf("seed %d node %d (%v): C = %g, downstream reference = %g",
					seed, i, g.Comp(i).Kind, e.C[i], ref)
			}
		}
	}
}

// chunkedRunner is a synchronous Runner that splits every region into
// parts uneven chunks and executes them in reverse order — a legal schedule
// under the Runner contract (disjoint cover, completion before return) that
// deliberately differs from both the serial loop and the pool's ascending
// shards, so any hidden intra-level dependency breaks equality tests.
func chunkedRunner(parts int) Runner {
	return func(lo, hi int, fn func(lo, hi int)) {
		n := hi - lo
		if n <= 0 {
			return
		}
		p := parts
		if p > n {
			p = n
		}
		for s := p - 1; s >= 0; s-- {
			fn(lo+s*n/p, lo+(s+1)*n/p)
		}
	}
}

// snapshot captures every derived array of the evaluator after a pass.
func snapshot(e *Evaluator) map[string][]float64 {
	m := map[string][]float64{
		"Cap": e.Cap, "RPs": e.RPs, "B": e.B, "C": e.C, "CPr": e.CPr,
		"D": e.D, "A": e.A,
	}
	if e.CNbr != nil {
		m["CNbr"] = e.CNbr
	}
	out := make(map[string][]float64, len(m))
	for k, v := range m {
		out[k] = append([]float64(nil), v...)
	}
	return out
}

// requireLevelizedMatchesSerial runs Recompute and UpstreamResistance on
// the graph both serially and under adversarially chunked levelized
// schedules and demands exact (bitwise) equality of every derived array.
func requireLevelizedMatchesSerial(t *testing.T, g *circuit.Graph, cs *coupling.Set, size float64) {
	t.Helper()
	ref, err := NewEvaluator(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	ref.SetAllSizes(size)
	ref.RecomputeSerial()
	lambda := make([]float64, g.NumNodes())
	for i := range lambda {
		lambda[i] = 0.5 + float64(i%7)*0.3
	}
	refR := make([]float64, g.NumNodes())
	ref.UpstreamResistanceSerial(lambda, refR)
	want := snapshot(ref)

	for _, parts := range []int{1, 2, 3, 7} {
		lv, err := NewEvaluator(g, cs)
		if err != nil {
			t.Fatal(err)
		}
		lv.SetRunner(chunkedRunner(parts))
		lv.SetAllSizes(size)
		lv.Recompute()
		got := snapshot(lv)
		for name, w := range want {
			for i := range w {
				if got[name][i] != w[i] {
					t.Fatalf("parts=%d: %s[%d] = %.17g, serial reference %.17g",
						parts, name, i, got[name][i], w[i])
				}
			}
		}
		lvR := make([]float64, g.NumNodes())
		lv.UpstreamResistance(lambda, lvR)
		for i := range refR {
			if lvR[i] != refR[i] {
				t.Fatalf("parts=%d: R[%d] = %.17g, serial reference %.17g", parts, i, lvR[i], refR[i])
			}
		}
	}
}

// TestLevelizedMatchesSerialFixtures cross-checks the levelized schedule on
// the package's hand-built fixtures, coupled and uncoupled.
func TestLevelizedMatchesSerialFixtures(t *testing.T) {
	chainG, _ := chain(t)
	requireLevelizedMatchesSerial(t, chainG, emptySet(t), 1)
	pairG, _, pairCS := coupledPair(t, 1.5)
	requireLevelizedMatchesSerial(t, pairG, pairCS, 0.7)
}

// TestLevelizedMatchesSerialRandom cross-checks the levelized schedule on
// random multi-stage DAGs across a range of sizes.
func TestLevelizedMatchesSerialRandom(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := randomDAG(t, seed)
		requireLevelizedMatchesSerial(t, g, emptySet(t), 0.3+float64(seed%9)*0.4)
	}
}

// TestLevelBucketsAreTopological asserts the evaluator's schedule premise
// on random DAGs: levels strictly increase along every edge, and the
// graph's buckets partition the nodes in ascending order.
func TestLevelBucketsAreTopological(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomDAG(t, seed)
		seen := make([]int, g.NumNodes())
		for l := 0; l < g.NumLevels(); l++ {
			nodes := g.LevelNodes(l)
			for k, i := range nodes {
				if g.Level(int(i)) != l {
					t.Fatalf("seed %d: node %d in bucket %d but Level says %d", seed, i, l, g.Level(int(i)))
				}
				if k > 0 && nodes[k-1] >= i {
					t.Fatalf("seed %d: bucket %d not ascending", seed, l)
				}
				seen[i]++
			}
		}
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("seed %d: node %d appears %d times in level buckets", seed, i, n)
			}
		}
		for i := 0; i < g.NumNodes(); i++ {
			for _, j := range g.In(i) {
				if g.Level(int(j)) >= g.Level(i) {
					t.Fatalf("seed %d: edge (%d,%d) does not increase level (%d → %d)",
						seed, j, i, g.Level(int(j)), g.Level(i))
				}
			}
		}
	}
}

// TestDriverOnlyCircuit covers the smallest buildable graph: one driver
// marked as a primary output, no sizable components at all.
func TestDriverOnlyCircuit(t *testing.T) {
	b := circuit.NewBuilder()
	d := b.AddDriver("D", 100)
	b.MarkOutput(d, 10)
	g, id, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(g, emptySet(t))
	if err != nil {
		t.Fatal(err)
	}
	e.Recompute()
	di := id[d]
	if e.B[di] != 10 || e.C[di] != 10 {
		t.Errorf("B, C = %g, %g, want 10, 10 (output load only)", e.B[di], e.C[di])
	}
	wantD := 100 * 1e-3 * 10 // R_D·C_L·RC
	if math.Abs(e.D[di]-wantD) > 1e-12 {
		t.Errorf("D = %g, want %g", e.D[di], wantD)
	}
	if e.MaxArrival() != e.D[di] {
		t.Errorf("MaxArrival = %g, want %g", e.MaxArrival(), e.D[di])
	}
	if cp := e.CriticalPath(); len(cp) != 1 || cp[0] != di {
		t.Errorf("CriticalPath = %v, want [%d]", cp, di)
	}
	if a := e.Area(); a != 0 {
		t.Errorf("Area = %g, want 0 (nothing sizable)", a)
	}
	requireLevelizedMatchesSerial(t, g, emptySet(t), 1)
}

// TestSinkFeederOnlyNet covers a net that feeds the sink directly from its
// driver through a single wire (no gates anywhere).
func TestSinkFeederOnlyNet(t *testing.T) {
	b := circuit.NewBuilder()
	d := b.AddDriver("D", 50)
	w := b.AddWire("w", 10, 2, 1, 40, 1, 0.1, 10)
	b.Connect(d, w)
	b.MarkOutput(w, 8)
	g, id, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(g, emptySet(t))
	if err != nil {
		t.Fatal(err)
	}
	e.SetAllSizes(2)
	e.Recompute()
	wi, di := id[w], id[d]
	if e.B[wi] != 8 {
		t.Errorf("B(w) = %g, want 8 (output load)", e.B[wi])
	}
	// C = B + f/2 + ĉx/2 = 8 + 0.5 + 2.
	if math.Abs(e.C[wi]-10.5) > 1e-12 {
		t.Errorf("C(w) = %g, want 10.5", e.C[wi])
	}
	if cp := e.CriticalPath(); len(cp) != 2 || cp[0] != di || cp[1] != wi {
		t.Errorf("CriticalPath = %v, want [%d %d]", cp, di, wi)
	}
	lambda := make([]float64, g.NumNodes())
	lambda[di] = 2
	r := make([]float64, g.NumNodes())
	e.UpstreamResistance(lambda, r)
	if math.Abs(r[wi]-2*50*1e-3) > 1e-15 {
		t.Errorf("R(w) = %g, want 0.1 (λ_D·R_D·RC)", r[wi])
	}
	requireLevelizedMatchesSerial(t, g, emptySet(t), 2)
}

// TestZeroCouplingSet pins the uncoupled degenerate case: nil neighbour
// arrays, empty gather lists, zero noise, and no CNbr term in C.
func TestZeroCouplingSet(t *testing.T) {
	g, id := chain(t)
	e, err := NewEvaluator(g, emptySet(t))
	if err != nil {
		t.Fatal(err)
	}
	if e.CNbr != nil || e.CHat != nil || e.CCst != nil {
		t.Error("uncoupled evaluator allocated coupling arrays")
	}
	ids, ws := e.NbrEntries(id["w"])
	if ids != nil || ws != nil {
		t.Errorf("NbrEntries on uncoupled evaluator = %v, %v, want nil, nil", ids, ws)
	}
	e.SetAllSizes(1)
	e.Recompute()
	if e.NoiseLinear() != 0 || e.NoiseExact() != 0 {
		t.Errorf("noise = %g / %g, want 0 / 0", e.NoiseLinear(), e.NoiseExact())
	}
}

// TestSetSizesErrorPaths exercises every rejection branch: wrong length,
// NaN, and ±Inf entries — and checks a rejected call leaves sizes intact.
func TestSetSizesErrorPaths(t *testing.T) {
	g, id := chain(t)
	e, _ := NewEvaluator(g, emptySet(t))
	good := make([]float64, g.NumNodes())
	good[id["w"]], good[id["g"]], good[id["w2"]] = 2, 3, 4
	if err := e.SetSizes(good); err != nil {
		t.Fatal(err)
	}
	if err := e.SetSizes([]float64{1, 2}); err == nil {
		t.Error("SetSizes accepted wrong-length vector")
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		x := make([]float64, g.NumNodes())
		copy(x, good)
		x[id["g"]] = bad
		if err := e.SetSizes(x); err == nil {
			t.Errorf("SetSizes accepted %g", bad)
		}
		if e.X[id["g"]] != 3 {
			t.Errorf("rejected SetSizes mutated X: %g", e.X[id["g"]])
		}
	}
	// Non-sizable slots may hold anything: they are ignored, not validated.
	x := make([]float64, g.NumNodes())
	copy(x, good)
	x[0] = math.NaN()
	if err := e.SetSizes(x); err != nil {
		t.Errorf("SetSizes rejected NaN on non-sizable node: %v", err)
	}
}

// TestCriticalPathNoSinkFeeders is the regression test for the degenerate
// graph whose sink has no predecessors (buildable only via BuildLoose):
// Recompute must define the sink arrival as 0 rather than leave it to
// whatever the arrays held, and CriticalPath must return nil.
func TestCriticalPathNoSinkFeeders(t *testing.T) {
	b := circuit.NewBuilder()
	d := b.AddDriver("D", 100)
	w := b.AddWire("w", 10, 2, 1, 50, 1, 0.1, 10)
	b.Connect(d, w) // w dangles: no MarkOutput, so the sink has no feeders
	g, id, err := b.BuildLoose()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(g.In(g.SinkID())); n != 0 {
		t.Fatalf("sink has %d feeders, want 0", n)
	}
	e, err := NewEvaluator(g, emptySet(t))
	if err != nil {
		t.Fatal(err)
	}
	e.SetAllSizes(1)
	// Poison the arrays so a pass that "relies on zero values" fails loudly.
	for i := range e.A {
		e.A[i] = -7
		e.D[i] = -7
	}
	e.Recompute()
	if e.MaxArrival() != 0 {
		t.Errorf("MaxArrival = %g, want 0 with no sink feeders", e.MaxArrival())
	}
	if e.D[g.SinkID()] != 0 {
		t.Errorf("D(sink) = %g, want 0", e.D[g.SinkID()])
	}
	if e.A[id[w]] <= 0 {
		t.Errorf("A(w) = %g, want positive (the dangling net still evaluates)", e.A[id[w]])
	}
	if cp := e.CriticalPath(); cp != nil {
		t.Errorf("CriticalPath = %v, want nil", cp)
	}
	requireLevelizedMatchesSerial(t, g, emptySet(t), 1)
}

// TestSetAllSizesNonFinite pins the clamp semantics for non-finite inputs:
// NaN and −Inf fall to each lower bound, +Inf to each upper bound — NaN
// must never reach X.
func TestSetAllSizesNonFinite(t *testing.T) {
	g, id := chain(t)
	e, _ := NewEvaluator(g, emptySet(t))
	for _, tc := range []struct {
		v    float64
		want func(c *circuit.Component) float64
	}{
		{math.NaN(), func(c *circuit.Component) float64 { return c.Lo }},
		{math.Inf(-1), func(c *circuit.Component) float64 { return c.Lo }},
		{math.Inf(1), func(c *circuit.Component) float64 { return c.Hi }},
	} {
		e.SetAllSizes(tc.v)
		for _, name := range []string{"w", "g", "w2"} {
			i := id[name]
			if got, want := e.X[i], tc.want(g.Comp(i)); got != want {
				t.Errorf("SetAllSizes(%g): X[%s] = %g, want %g", tc.v, name, got, want)
			}
		}
	}
}
