// Package rc is the Elmore-delay RC evaluation engine for sized circuit
// graphs (Section 2.1 of the paper). For a size vector x it computes, in
// one linear pass each:
//
//   - per-node capacitance cᵢ and effective resistance rᵢ,
//   - stage-local downstream loads Bᵢ (reverse topological order),
//   - Elmore node delays Dᵢ = rᵢ·Cᵢ with the paper's stage decomposition
//     (gates decouple stages; a gate's input capacitance terminates the
//     stage of each of its fan-in nets),
//   - arrival times aᵢ = max_{j∈input(i)} aⱼ + Dᵢ and the critical path,
//   - the weighted upstream resistances Rᵢ = Σ_{k∈upstream(i)} λₖ·rₖ used
//     by Theorem 5 (forward topological order),
//   - the totals (area, capacitance/power, crosstalk) of problem P̃.
//
// Coupling capacitances enter each wire's own downstream load Cᵢ (their
// x-dependence is priced by Theorem 5's Σĉᵢⱼxⱼ term) but are not seen by
// upstream resistances, keeping the evaluated Lagrangian exactly consistent
// with the paper's optimality conditions; see DESIGN.md §2.
//
// All delays are in ps, resistances in Ω, capacitances in fF, sizes in µm.
//
// # Levelized scheduling
//
// The two topological passes (stage loads B/C and arrival times in
// Recompute, the weighted upstream resistances in UpstreamResistance) carry
// chain dependencies, so they cannot be sharded as flat index ranges the
// way the per-node electrical pass can. Instead they are scheduled over the
// graph's topological levels (circuit.Graph.Level): every edge strictly
// increases the level, so nodes sharing a level are mutually independent
// and each level is a parallel region separated from the next by a barrier.
// With a Runner installed the passes run level by level through it; without
// one they fall back to the plain index-order reference loops
// (RecomputeSerial, UpstreamResistanceSerial). Both schedules execute the
// identical per-node bodies and every per-node accumulation folds in the
// same fan-in/fan-out list order, so serial, levelized-inline, and
// levelized-parallel results are bit-identical — a guarantee the golden,
// property, and fuzz suites enforce.
//
// # Incremental (dirty-cone) evaluation
//
// Between evaluations the engine tracks which sizes changed (MarkDirty;
// SetSize/SetSizes/SetAllSizes mark automatically) and
// RecomputeIncremental / UpstreamResistanceIncremental refresh only the
// forward/backward cones those changes can reach, walking the level
// buckets with the same per-node bodies. The invariant is strict: a node
// is skipped only when every input its body reads is bitwise unchanged,
// so the incremental passes are bit-identical to the full ones on every
// input (FuzzIncremental and the solver-level golden suites pin this with
// exact == comparisons). When the dirty set grows past a fraction of the
// circuit (the coneWorthwhile cutover, dirty > ⅛ of nodes) a refresh
// degrades to the — equally exact — full pass and reports cone=false so
// callers can over-activate; the split EvalStats counters
// (CutoverRecomputes vs DegradedRecomputes) let the solver's hysteresis
// distinguish a cutover streak (dense coupling defeating the bookkeeping)
// from the routine pre-first-pass fallback.
//
// EvalStats/Stats/ResetStats expose the pass and per-node-body work
// counters the benchmark trajectory and the sizing service report;
// maintaining them costs nothing inside the parallel bodies.
package rc
