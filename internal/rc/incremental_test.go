package rc

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/coupling"
)

// incrementalPair builds two evaluators over the same circuit: inc (driven
// incrementally) and ref (the full-pass oracle), both settled at size.
func incrementalPair(t *testing.T, g *circuit.Graph, cs *coupling.Set, size float64) (inc, ref *Evaluator) {
	t.Helper()
	var err error
	if inc, err = NewEvaluator(g, cs); err != nil {
		t.Fatal(err)
	}
	if ref, err = NewEvaluator(g, cs); err != nil {
		t.Fatal(err)
	}
	inc.SetAllSizes(size)
	ref.SetAllSizes(size)
	inc.Recompute()
	ref.RecomputeSerial()
	return inc, ref
}

// requireBitEqual compares every derived array of two evaluators exactly.
func requireBitEqual(t *testing.T, inc, ref *Evaluator, ctx string) {
	t.Helper()
	nn := ref.g.NumNodes()
	for i := 0; i < nn; i++ {
		if inc.X[i] != ref.X[i] {
			t.Fatalf("%s: node %d X %.17g != %.17g", ctx, i, inc.X[i], ref.X[i])
		}
		if inc.Cap[i] != ref.Cap[i] || inc.RPs[i] != ref.RPs[i] {
			t.Fatalf("%s: node %d electrical state diverged", ctx, i)
		}
		if inc.B[i] != ref.B[i] || inc.C[i] != ref.C[i] || inc.CPr[i] != ref.CPr[i] {
			t.Fatalf("%s: node %d loads diverged: B %.17g/%.17g C %.17g/%.17g",
				ctx, i, inc.B[i], ref.B[i], inc.C[i], ref.C[i])
		}
		if inc.D[i] != ref.D[i] || inc.A[i] != ref.A[i] {
			t.Fatalf("%s: node %d timing diverged: D %.17g/%.17g A %.17g/%.17g",
				ctx, i, inc.D[i], ref.D[i], inc.A[i], ref.A[i])
		}
		if inc.CNbr != nil && inc.CNbr[i] != ref.CNbr[i] {
			t.Fatalf("%s: node %d CNbr %.17g != %.17g", ctx, i, inc.CNbr[i], ref.CNbr[i])
		}
	}
}

// coupledChainPair builds D→w1→g1→w2→load with an aggressor D2→w3→load
// where w1‖w3 are coupled — small enough to reason about, rich enough to
// cover wires, gates, coupling, and both artificial terminals. Eight
// independent padding chains keep the circuit large enough that a
// single-node mutation walks a cone instead of tripping the
// coneWorthwhile cutover into a full pass.
func coupledChainPair(t *testing.T) (*circuit.Graph, *coupling.Set, map[string]int) {
	t.Helper()
	b := circuit.NewBuilder()
	for p := 0; p < 8; p++ {
		pd := b.AddDriver("pd", 100)
		pw := b.AddWire("pw", 7+float64(p), 1.2, 0.05, 35, 1, 0.1, 10)
		b.Connect(pd, pw)
		b.MarkOutput(pw, 4)
	}
	d1 := b.AddDriver("D1", 120)
	d2 := b.AddDriver("D2", 90)
	w1 := b.AddWire("w1", 12, 2, 0.1, 60, 1, 0.1, 10)
	g1 := b.AddGate("g1", 25, 0.5, 3, 0.1, 10)
	w2 := b.AddWire("w2", 6, 1, 0.05, 30, 1, 0.1, 10)
	w3 := b.AddWire("w3", 9, 1.5, 0.08, 50, 1, 0.1, 10)
	b.Connect(d1, w1)
	b.Connect(w1, g1)
	b.Connect(g1, w2)
	b.Connect(d2, w3)
	b.MarkOutput(w2, 8)
	b.MarkOutput(w3, 3)
	g, id, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for i := 0; i < g.NumNodes(); i++ {
		names[g.Comp(i).Name] = i
	}
	i, j := id[w1], id[w3]
	if i > j {
		i, j = j, i
	}
	cs, err := coupling.NewSet([]coupling.Pair{{I: i, J: j, CTilde: 6, Dist: 2, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return g, cs, names
}

// TestIncrementalEmptyDirtySet: with nothing marked, the incremental pass
// must do no per-node work and leave every value untouched.
func TestIncrementalEmptyDirtySet(t *testing.T) {
	g, cs, _ := coupledChainPair(t)
	inc, ref := incrementalPair(t, g, cs, 1.5)
	before := inc.Stats()
	if chg, cone := inc.RecomputeIncremental(); !cone || len(chg) != 0 {
		t.Fatalf("empty dirty set reported cone=%v with %d changed nodes", cone, len(chg))
	}
	after := inc.Stats()
	if after.NodeVisits() != before.NodeVisits() {
		t.Errorf("empty dirty set executed %d bodies", after.NodeVisits()-before.NodeVisits())
	}
	if after.IncRecomputes != before.IncRecomputes+1 {
		t.Errorf("incremental call not counted")
	}
	rup, rupRef := make([]float64, g.NumNodes()), make([]float64, g.NumNodes())
	lambda := testLambda(g)
	inc.UpstreamResistance(lambda, rup)
	if chg, cone := inc.UpstreamResistanceIncremental(lambda, rup); !cone || len(chg) != 0 {
		t.Fatalf("empty dirty set reported cone=%v with %d changed upstream entries", cone, len(chg))
	}
	ref.UpstreamResistanceSerial(lambda, rupRef)
	for i := range rup {
		if rup[i] != rupRef[i] {
			t.Fatalf("node %d upstream %.17g != %.17g", i, rup[i], rupRef[i])
		}
	}
	requireBitEqual(t, inc, ref, "empty dirty set")
}

func testLambda(g *circuit.Graph) []float64 {
	lambda := make([]float64, g.NumNodes())
	for i := range lambda {
		lambda[i] = 0.2 + float64(i%7)*0.35
	}
	return lambda
}

// TestIncrementalAllDirty: mutating every sizable node must reproduce the
// full pass exactly.
func TestIncrementalAllDirty(t *testing.T) {
	g, cs, _ := coupledChainPair(t)
	inc, ref := incrementalPair(t, g, cs, 1)
	inc.SetAllSizes(2.75)
	ref.SetAllSizes(2.75)
	inc.RecomputeIncremental()
	ref.RecomputeSerial()
	requireBitEqual(t, inc, ref, "all dirty")
}

// TestIncrementalSinkAndSourceAdjacent mutates the nodes hugging the
// artificial terminals: a sink-feeding output wire and the first component
// behind a driver. The cones must stop cleanly at both ends.
func TestIncrementalSinkAndSourceAdjacent(t *testing.T) {
	g, cs, names := coupledChainPair(t)
	lambda := testLambda(g)
	for _, tc := range []struct {
		name string
		node string
	}{
		{"sink-adjacent", "w2"},
		{"source-adjacent", "w1"},
		{"aggressor-output", "w3"},
		{"gate", "g1"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inc, ref := incrementalPair(t, g, cs, 1.2)
			rup := make([]float64, g.NumNodes())
			rupRef := make([]float64, g.NumNodes())
			inc.UpstreamResistance(lambda, rup)
			i := names[tc.node]
			if _, err := inc.SetSize(i, 4.5); err != nil {
				t.Fatal(err)
			}
			ref.X[i] = inc.X[i]
			inc.RecomputeIncremental()
			ref.RecomputeSerial()
			requireBitEqual(t, inc, ref, tc.name)
			inc.UpstreamResistanceIncremental(lambda, rup)
			ref.UpstreamResistanceSerial(lambda, rupRef)
			for n := range rup {
				if rup[n] != rupRef[n] {
					t.Fatalf("%s: node %d upstream %.17g != %.17g", tc.name, n, rup[n], rupRef[n])
				}
			}
		})
	}
}

// TestIncrementalCouplingNeighbor: resizing w1 must propagate through the
// coupling pair into w3's CNbr, C, and delay — the neighbour sits in a
// disjoint part of the DAG, so only the coupling edge can carry the change.
func TestIncrementalCouplingNeighbor(t *testing.T) {
	g, cs, names := coupledChainPair(t)
	inc, ref := incrementalPair(t, g, cs, 1)
	w3 := names["w3"]
	oldD := inc.D[w3]
	i := names["w1"]
	if _, err := inc.SetSize(i, 3.3); err != nil {
		t.Fatal(err)
	}
	ref.X[i] = inc.X[i]
	chg, cone := inc.RecomputeIncremental()
	if !cone {
		t.Fatal("single-node mutation should walk a cone, not degrade to a full pass")
	}
	ref.RecomputeSerial()
	requireBitEqual(t, inc, ref, "coupling neighbour")
	if inc.D[w3] == oldD {
		t.Fatalf("neighbour delay did not move with the aggressor size")
	}
	// The neighbour's resize inputs changed, so the change feed must
	// mention it (that is what reactivates it in the solver's active set).
	found := false
	for _, n := range chg {
		if int(n) == w3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("change feed %v does not include coupling neighbour %d", chg, w3)
	}
}

// TestIncrementalFallsBackBeforeFullPass: a fresh evaluator has no valid
// derived state; the incremental entry points must degrade to full passes.
func TestIncrementalFallsBackBeforeFullPass(t *testing.T) {
	g, cs, _ := coupledChainPair(t)
	inc, err := NewEvaluator(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewEvaluator(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	inc.SetAllSizes(1.1)
	ref.SetAllSizes(1.1)
	if chg, cone := inc.RecomputeIncremental(); cone || chg != nil {
		t.Fatalf("fallback should report (nil, false), got (%v, %v)", chg, cone)
	}
	ref.RecomputeSerial()
	requireBitEqual(t, inc, ref, "fallback")
	if st := inc.Stats(); st.FullRecomputes != 1 || st.IncRecomputes != 0 {
		t.Errorf("fallback counted as %+v", st)
	}
	// Upstream fallback on a second fresh evaluator.
	inc2, err := NewEvaluator(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	inc2.SetAllSizes(1.1)
	lambda := testLambda(g)
	rup := make([]float64, g.NumNodes())
	if chg, cone := inc2.UpstreamResistanceIncremental(lambda, rup); cone || chg != nil {
		t.Fatalf("upstream fallback should report (nil, false), got (%v, %v)", chg, cone)
	}
}

// TestSetSizeContract covers clamping, rejection, and dirty marking.
func TestSetSizeContract(t *testing.T) {
	g, cs, names := coupledChainPair(t)
	inc, _ := incrementalPair(t, g, cs, 1)
	w1 := names["w1"]
	if v, err := inc.SetSize(w1, 99); err != nil || v != 10 {
		t.Errorf("SetSize clamp high: v=%g err=%v", v, err)
	}
	if v, err := inc.SetSize(w1, -5); err != nil || v != 0.1 {
		t.Errorf("SetSize clamp low: v=%g err=%v", v, err)
	}
	if _, err := inc.SetSize(w1, math.NaN()); err == nil {
		t.Error("SetSize accepted NaN")
	}
	if _, err := inc.SetSize(w1, math.Inf(1)); err == nil {
		t.Error("SetSize accepted +Inf")
	}
	if _, err := inc.SetSize(0, 1); err == nil {
		t.Error("SetSize accepted the source node")
	}
	// Marking a non-sizable node is an ignored no-op.
	inc.MarkDirty(0)
	inc.MarkDirty(g.SinkID())
	inc.SetAllSizes(inc.X[w1])
	inc.RecomputeIncremental()
	before := inc.Stats().NodeVisits()
	inc.SetAllSizes(inc.X[w1]) // identical sizes: nothing marked dirty
	inc.RecomputeIncremental()
	if visits := inc.Stats().NodeVisits() - before; visits != 0 {
		t.Errorf("no-op SetAllSizes triggered %d body executions", visits)
	}
}

// TestIncrementalUnderRunner re-runs a mutation batch with a hostile
// chunked Runner installed: the dirty-frontier scheduling must stay
// bit-identical to the serial full pass under any legal partition.
func TestIncrementalUnderRunner(t *testing.T) {
	g, cs, names := coupledChainPair(t)
	for _, parts := range []int{1, 2, 5} {
		inc, ref := incrementalPair(t, g, cs, 1)
		inc.SetRunner(chunkedRunner(parts))
		lambda := testLambda(g)
		rup := make([]float64, g.NumNodes())
		rupRef := make([]float64, g.NumNodes())
		inc.UpstreamResistance(lambda, rup)
		for step, node := range []string{"w1", "g1", "w2", "w3", "w1"} {
			i := names[node]
			if _, err := inc.SetSize(i, 0.5+float64(step)*0.9); err != nil {
				t.Fatal(err)
			}
			ref.X[i] = inc.X[i]
			inc.RecomputeIncremental()
			ref.RecomputeSerial()
			requireBitEqual(t, inc, ref, node)
			inc.UpstreamResistanceIncremental(lambda, rup)
			ref.UpstreamResistanceSerial(lambda, rupRef)
			for n := range rup {
				if rup[n] != rupRef[n] {
					t.Fatalf("parts=%d step %d: node %d upstream diverged", parts, step, n)
				}
			}
		}
	}
}

// TestIncrementalWorkIsLocal: on a long chain, a single mid-chain
// mutation must evaluate far fewer bodies than the full circuit — the
// point of the dirty-cone engine.
func TestIncrementalWorkIsLocal(t *testing.T) {
	b := circuit.NewBuilder()
	prev := b.AddDriver("D", 100)
	var mid int
	const segs = 60
	for k := 0; k < segs; k++ {
		w := b.AddWire("w", 10, 1.5, 0.05, 40, 1, 0.1, 10)
		g := b.AddGate("g", 20, 0.4, 2, 0.1, 10)
		b.Connect(prev, w)
		b.Connect(w, g)
		prev = g
		if k == segs/2 {
			mid = w
		}
	}
	wo := b.AddWire("wo", 5, 1, 0.05, 20, 1, 0.1, 10)
	b.Connect(prev, wo)
	b.MarkOutput(wo, 5)
	g, id, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cs, err := coupling.NewSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	ev.SetAllSizes(1)
	ev.Recompute()
	ev.ResetStats()
	if _, err := ev.SetSize(id[mid], 2); err != nil {
		t.Fatal(err)
	}
	ev.RecomputeIncremental()
	st := ev.Stats()
	nn := int64(g.NumNodes())
	// The loads cone stops at the driving gate; the arrival cone spans the
	// downstream half. Anything near a full pass (3·nn bodies) means the
	// cone walk leaked.
	if st.NodeVisits() >= 2*nn {
		t.Errorf("mid-chain mutation evaluated %d bodies on a %d-node chain", st.NodeVisits(), nn)
	}
	if st.LoadsNodes > 8 {
		t.Errorf("backward loads cone evaluated %d nodes, want a stage-local handful", st.LoadsNodes)
	}
}

// TestQueryPathScratchVariants: the allocation-free query variants must
// reproduce the allocating originals exactly and reuse caller buffers.
func TestQueryPathScratchVariants(t *testing.T) {
	g, cs, _ := coupledChainPair(t)
	ev, _ := incrementalPair(t, g, cs, 1.4)

	want := ev.CriticalPath()
	buf := make([]int, 0, g.NumNodes())
	got := ev.AppendCriticalPath(buf)
	if len(got) != len(want) {
		t.Fatalf("AppendCriticalPath length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendCriticalPath[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Appending after a prefix keeps the prefix and order.
	pre := ev.AppendCriticalPath([]int{-7})
	if pre[0] != -7 || len(pre) != len(want)+1 || pre[1] != want[0] {
		t.Fatalf("AppendCriticalPath clobbered the prefix: %v", pre)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		buf = ev.AppendCriticalPath(buf[:0])
	}); allocs != 0 {
		t.Errorf("AppendCriticalPath allocates %.0f objects per call with capacity", allocs)
	}

	wantReq := ev.RequiredTimes(33)
	req := make([]float64, g.NumNodes())
	for i := range req {
		req[i] = -1 // must be fully overwritten, including +Inf entries
	}
	ev.RequiredTimesInto(33, req)
	for i := range wantReq {
		if req[i] != wantReq[i] && !(math.IsInf(req[i], 1) && math.IsInf(wantReq[i], 1)) {
			t.Fatalf("RequiredTimesInto[%d] = %g, want %g", i, req[i], wantReq[i])
		}
	}
	if allocs := testing.AllocsPerRun(20, func() {
		ev.RequiredTimesInto(33, req)
	}); allocs != 0 {
		t.Errorf("RequiredTimesInto allocates %.0f objects per call", allocs)
	}
}

// TestDegradeCounterSplit pins the accounting the solver's cutover
// hysteresis relies on: a pre-first-pass fallback counts only as a
// degraded call, while a degrade caused by the coneWorthwhile cutover is
// additionally charged to the Cutover* counters.
func TestDegradeCounterSplit(t *testing.T) {
	g, cs, _ := coupledChainPair(t)
	ev, err := NewEvaluator(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	ev.SetAllSizes(1.2)
	// Fresh evaluator: no valid derived state yet, so the degrade is the
	// pre-first-pass fallback, not a cutover hit.
	ev.RecomputeIncremental()
	if st := ev.Stats(); st.DegradedRecomputes != 1 || st.CutoverRecomputes != 0 {
		t.Fatalf("pre-first-pass fallback miscounted: %+v", st)
	}
	lambda := testLambda(g)
	rup := make([]float64, g.NumNodes())
	ev.UpstreamResistance(lambda, rup)
	// Dirty every sizable node: far past the 1/8 cutover.
	ev.SetAllSizes(2.5)
	ev.RecomputeIncremental()
	if st := ev.Stats(); st.DegradedRecomputes != 2 || st.CutoverRecomputes != 1 {
		t.Fatalf("cutover degrade miscounted: %+v", st)
	}
	ev.SetAllSizes(3.1)
	ev.UpstreamResistanceIncremental(lambda, rup)
	if st := ev.Stats(); st.DegradedUpstreams != 1 || st.CutoverUpstreams != 1 {
		t.Fatalf("cutover upstream degrade miscounted: %+v", st)
	}
	// A small dirty set walks cones and must leave the degrade counters
	// alone.
	ev.Recompute()
	ev.UpstreamResistance(lambda, rup)
	sizable := -1
	for i := 0; i < g.NumNodes(); i++ {
		if g.Comp(i).Kind.Sizable() {
			sizable = i
			break
		}
	}
	if _, err := ev.SetSize(sizable, 0.7); err != nil {
		t.Fatal(err)
	}
	ev.RecomputeIncremental()
	ev.UpstreamResistanceIncremental(lambda, rup)
	st := ev.Stats()
	if st.DegradedRecomputes != 2 || st.CutoverRecomputes != 1 ||
		st.DegradedUpstreams != 1 || st.CutoverUpstreams != 1 {
		t.Fatalf("cone walk touched the degrade counters: %+v", st)
	}
	if st.IncRecomputes == 0 || st.IncUpstreams == 0 {
		t.Fatalf("cone walk not counted as incremental: %+v", st)
	}
}
