// Structure-of-arrays kernel layer.
//
// The evaluator's per-node bodies (electrical values, coupling gather,
// stage loads, arrivals, upstream resistances) are defined here as kernel
// functions over flat float64 stripes: one `topo` holds everything shaped
// by the circuit alone (per-node constants, the coupling CSR, the level
// buckets), one `stripes` holds everything that depends on the current
// sizes. A solo Evaluator owns one stripe set; an rc.Batch lays K replica
// stripe sets out contiguously over one shared topo so a single levelized
// pass can advance all replicas with one barrier per level.
//
// Every kernel is a literal extraction of the original per-node body: the
// same reads, the same accumulation order, the same arithmetic — so the
// kernel layer is bit-identical to the pre-refactor evaluator by
// construction, and a batched replica is bit-identical to a solo one.
package rc

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/coupling"
	"repro/internal/tech"
)

// topo is the size-independent half of an evaluation: the graph, the
// per-node component constants flattened into arrays (so the hot loops
// read contiguous float64s instead of chasing component structs), the
// coupling gather CSR, and the interior level buckets. One topo is shared
// read-only by every evaluator built over it — a solo Evaluator or all K
// replicas of a Batch.
type topo struct {
	g  *circuit.Graph
	cs *coupling.Set

	// Flat per-node component constants.
	kind   []circuit.Kind
	cUnit  []float64 // ĉᵢ (fF/µm)
	fringe []float64 // fᵢ (fF); 0 for non-wires
	load   []float64 // fixed fan-out load (fF)
	rcR    []float64 // tech.RC·r̂ᵢ (ps·µm/fF)

	// Coupling gather CSR and the size-independent coupling sums
	// (see Evaluator.CHat/CCst); nil when the coupling set is empty.
	coupled bool
	nbrOff  []int32
	nbrIdx  []int32
	nbrW    []float64
	chat    []float64
	ccst    []float64

	// Interior level buckets (see Evaluator.lvlOff/lvlNodes).
	lvlOff   []int32
	lvlNodes []int32
}

// stripes is the size-dependent half: the size vector and every derived
// per-node array, each one flat contiguous float64s. A Batch carves the
// stripe sets of all replicas out of one slab, so the lockstep inner loops
// walk dense memory.
type stripes struct {
	x    []float64
	cap  []float64
	rps  []float64
	b    []float64
	c    []float64
	cpr  []float64
	d    []float64
	a    []float64
	cnbr []float64 // nil when uncoupled
}

// stripeArrays is the number of per-replica arrays a stripe set holds.
func (t *topo) stripeArrays() int {
	if t.coupled {
		return 9
	}
	return 8
}

// carve slices a stripe set for one replica out of slab (length
// stripeArrays()·nn); a nil slab allocates fresh backing.
func (t *topo) carve(slab []float64) stripes {
	nn := t.g.NumNodes()
	if slab == nil {
		slab = make([]float64, t.stripeArrays()*nn)
	}
	cut := func() []float64 {
		s := slab[:nn:nn]
		slab = slab[nn:]
		return s
	}
	st := stripes{
		x: cut(), cap: cut(), rps: cut(), b: cut(),
		c: cut(), cpr: cut(), d: cut(), a: cut(),
	}
	if t.coupled {
		st.cnbr = cut()
	}
	return st
}

// buildTopo validates the coupling set against the graph and assembles the
// shared topology: flattened component constants, the coupling CSR with
// its size-independent sums, and the interior level buckets.
func buildTopo(g *circuit.Graph, cs *coupling.Set) (*topo, error) {
	nn := g.NumNodes()
	t := &topo{
		g: g, cs: cs,
		kind:   make([]circuit.Kind, nn),
		cUnit:  make([]float64, nn),
		fringe: make([]float64, nn),
		load:   make([]float64, nn),
		rcR:    make([]float64, nn),
	}
	for i := 0; i < nn; i++ {
		c := g.Comp(i)
		t.kind[i] = c.Kind
		t.cUnit[i] = c.CUnit
		t.fringe[i] = c.Fringe
		t.load[i] = c.Load
		t.rcR[i] = tech.RC * c.RUnit
	}
	if cs.Len() > 0 {
		t.coupled = true
		t.chat = make([]float64, nn)
		t.ccst = make([]float64, nn)
		counts := make([]int32, nn+1)
		for _, p := range cs.Pairs() {
			for _, v := range [2]int{p.I, p.J} {
				if v >= nn || g.Comp(v).Kind != circuit.Wire {
					return nil, fmt.Errorf("rc: coupling pair (%d,%d) touches non-wire node %d", p.I, p.J, v)
				}
			}
			t.chat[p.I] += p.Weight * p.CHat()
			t.chat[p.J] += p.Weight * p.CHat()
			t.ccst[p.I] += p.Weight * p.CTilde
			t.ccst[p.J] += p.Weight * p.CTilde
			counts[p.I+1]++
			counts[p.J+1]++
		}
		t.nbrOff = counts
		for i := 0; i < nn; i++ {
			t.nbrOff[i+1] += t.nbrOff[i]
		}
		t.nbrIdx = make([]int32, 2*cs.Len())
		t.nbrW = make([]float64, 2*cs.Len())
		fill := make([]int32, nn)
		for _, p := range cs.Pairs() {
			w := p.Weight * p.CHat()
			ki := t.nbrOff[p.I] + fill[p.I]
			t.nbrIdx[ki], t.nbrW[ki] = int32(p.J), w
			fill[p.I]++
			kj := t.nbrOff[p.J] + fill[p.J]
			t.nbrIdx[kj], t.nbrW[kj] = int32(p.I), w
			fill[p.J]++
		}
	}
	// Interior level buckets for the levelized topological passes.
	nLvl := g.NumLevels()
	t.lvlOff = make([]int32, nLvl+1)
	for i := 1; i < nn-1; i++ {
		t.lvlOff[g.Level(i)+1]++
	}
	for l := 0; l < nLvl; l++ {
		t.lvlOff[l+1] += t.lvlOff[l]
	}
	t.lvlNodes = make([]int32, nn-2)
	fill := make([]int32, nLvl)
	for i := 1; i < nn-1; i++ { // ascending i ⇒ ascending within each bucket
		l := g.Level(i)
		t.lvlNodes[t.lvlOff[l]+fill[l]] = int32(i)
		fill[l]++
	}
	return t, nil
}

// numLevels returns the number of interior level buckets.
func (t *topo) numLevels() int { return len(t.lvlOff) - 1 }

// kElectrical fills the per-node capacitances and effective resistances
// for nodes [lo, hi); every iteration is independent.
func (t *topo) kElectrical(st *stripes, lo, hi int) {
	for i := lo; i < hi; i++ {
		switch t.kind[i] {
		case circuit.Driver:
			st.cap[i] = 0
			st.rps[i] = t.rcR[i]
		case circuit.Gate:
			st.cap[i] = t.cUnit[i] * st.x[i]
			st.rps[i] = t.rcR[i] / st.x[i]
		case circuit.Wire:
			st.cap[i] = t.cUnit[i]*st.x[i] + t.fringe[i]
			st.rps[i] = t.rcR[i] / st.x[i]
		}
	}
}

// kCoupling fills the neighbour coupling sums for nodes [lo, hi), gathered
// per node from the CSR index in the same per-node accumulation order as
// the pair-scatter formulation.
func (t *topo) kCoupling(st *stripes, lo, hi int) {
	for i := lo; i < hi; i++ {
		sum := 0.0
		for k := t.nbrOff[i]; k < t.nbrOff[i+1]; k++ {
			sum += t.nbrW[k] * st.x[t.nbrIdx[k]]
		}
		st.cnbr[i] = sum
	}
}

// kLoads computes the stage load B and the delay loads C/C′ of node i from
// its fan-out. Every read (cap of any fan-out, b of wire fan-outs) is of a
// node on a strictly higher level; the accumulation folds in fan-out list
// order, identical for every schedule.
func (t *topo) kLoads(st *stripes, i int) {
	b := t.load[i]
	for _, jj := range t.g.Out(i) {
		j := int(jj)
		switch t.kind[j] {
		case circuit.Wire:
			b += st.cap[j] + st.b[j]
		case circuit.Gate:
			b += st.cap[j]
		case circuit.Sink:
			// Load already accounted in the fixed load.
		}
	}
	st.b[i] = b
	switch t.kind[i] {
	case circuit.Wire:
		ccst, chat, cnbr := 0.0, 0.0, 0.0
		if t.coupled {
			ccst, chat, cnbr = t.ccst[i], t.chat[i], st.cnbr[i]
		}
		st.cpr[i] = b + t.fringe[i]/2 + ccst
		st.c[i] = st.cpr[i] + cnbr + (t.cUnit[i]*st.x[i])/2 + chat*st.x[i]
	default: // gate or driver
		st.cpr[i] = b
		st.c[i] = b
	}
}

// kArrival computes node i's Elmore delay and arrival time. Reads only
// arrivals of fan-ins (strictly lower level) and its own rps/c.
func (t *topo) kArrival(st *stripes, i int) {
	st.d[i] = st.rps[i] * st.c[i]
	a := 0.0
	for _, j := range t.g.In(i) {
		if st.a[j] > a {
			a = st.a[j]
		}
	}
	st.a[i] = a + st.d[i]
}

// kFinishSink defines the sink's arrival as the max over its feeders (0
// when the sink has no feeders) — exact under any grouping.
func (t *topo) kFinishSink(st *stripes) {
	sink := t.g.SinkID()
	maxA := 0.0
	for _, j := range t.g.In(sink) {
		if st.a[j] > maxA {
			maxA = st.a[j]
		}
	}
	st.d[sink] = 0
	st.a[sink] = maxA
}

// kUpstream folds node i's weighted upstream resistance from its fan-ins.
// Reads dst only for wire fan-ins (strictly lower levels); the fold runs
// in fan-in list order, identical for every schedule.
func (t *topo) kUpstream(st *stripes, i int, lambda, dst []float64) float64 {
	sum := 0.0
	for _, jj := range t.g.In(i) {
		j := int(jj)
		if j == 0 {
			continue // source contributes nothing
		}
		switch t.kind[j] {
		case circuit.Driver, circuit.Gate:
			sum += lambda[j] * st.rps[j]
		case circuit.Wire:
			sum += dst[j] + lambda[j]*st.rps[j]
		}
	}
	return sum
}

// kNodeBackward advances one interior node through the fused reverse pass:
// its electrical values, its coupling gather, and its stage loads in one
// visit. Valid whenever nodes are visited in descending index or level
// order — kLoads reads only cap/b of strictly higher-index fan-outs, and
// the coupling gather reads only sizes, which no pass writes — and
// bit-identical to the split flat passes because each per-node body is
// unchanged.
func (t *topo) kNodeBackward(st *stripes, i int) {
	t.kElectrical(st, i, i+1)
	if t.coupled {
		t.kCoupling(st, i, i+1)
	}
	t.kLoads(st, i)
}
