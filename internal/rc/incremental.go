// Incremental (dirty-cone) evaluation.
//
// Late LRS sweeps change only a shrinking fringe of sizes, yet every full
// Recompute/UpstreamResistance pays the whole circuit. The engine in this
// file re-runs the *same* per-node bodies (electricalRange, couplingRange,
// loadsNode, arrivalNode, upstreamNode) only where an input actually
// changed, discovered by walking the cones of the recorded size changes
// over the precomputed level buckets:
//
//   - stage loads B/C/C′ flow backward: a changed node and the fan-ins
//     that read its capacitance seed a reverse walk that follows B changes
//     through wires (gates decouple stages — a gate's B is read by nobody);
//   - delays and arrivals flow forward from every node whose r or C moved,
//     following arrival changes through the fan-out cone;
//   - weighted upstream resistances flow forward from the fan-outs of each
//     changed node, following value changes through wires.
//
// A node is skipped only when every input its body reads is bitwise
// unchanged, and each body is a pure function of its inputs folded in a
// fixed order, so the incremental passes are bit-identical to the full
// ones — the contract FuzzIncremental, the table tests, and the golden
// suite all enforce with exact == comparisons. Dirty frontiers within one
// level are independent (same argument as the levelized schedule) and run
// through the installed Runner; change detection writes per-node flags and
// all queue pushes happen on the coordinator, so the walk is race-free.
package rc

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// EvalStats counts evaluation work: full and incremental pass invocations
// plus the number of per-node bodies each pass family actually executed.
// The counters are maintained by the scheduling layer (never inside the
// parallel bodies), so keeping them costs nothing per node.
type EvalStats struct {
	// FullRecomputes / IncRecomputes count Recompute-family calls that ran
	// the full circuit versus a dirty cone; likewise for the upstream pair.
	FullRecomputes, IncRecomputes int64
	FullUpstreams, IncUpstreams   int64
	// DegradedRecomputes / DegradedUpstreams count the incremental calls
	// that ran a full pass instead (pre-first-pass fallback or the
	// coneWorthwhile cutover). Those passes are counted in FullRecomputes/
	// FullUpstreams too; the split lets work accounting tell a sweep-top
	// degrade apart from a deliberate trailing full pass.
	DegradedRecomputes, DegradedUpstreams int64
	// CutoverRecomputes / CutoverUpstreams count the subset of the degraded
	// calls caused by the coneWorthwhile cutover — the dirty set was too
	// large for cone walking to pay — as opposed to the pre-first-pass
	// fallback. The solver's cutover hysteresis watches exactly this
	// counter: a streak of cutover hits means the circuit (dense coupling,
	// global movement) defeats the bookkeeping, while a pre-first-pass
	// degrade says nothing about it.
	CutoverRecomputes, CutoverUpstreams int64
	// Per-node body executions by pass.
	ElectricalNodes int64
	CouplingNodes   int64
	LoadsNodes      int64
	ArrivalNodes    int64
	UpstreamNodes   int64
}

// NodeVisits is the total number of per-node bodies executed — the
// "evaluation work" measure the sweep benchmarks compare between the full
// and incremental engines.
func (s EvalStats) NodeVisits() int64 {
	return s.ElectricalNodes + s.CouplingNodes + s.LoadsNodes + s.ArrivalNodes + s.UpstreamNodes
}

// Sub returns the counter-wise difference s − prev: the evaluation work
// performed between two Stats snapshots. The progress-streaming layer uses
// it to report per-iteration work deltas without resetting the cumulative
// counters mid-solve.
func (s EvalStats) Sub(prev EvalStats) EvalStats {
	return EvalStats{
		FullRecomputes:     s.FullRecomputes - prev.FullRecomputes,
		IncRecomputes:      s.IncRecomputes - prev.IncRecomputes,
		FullUpstreams:      s.FullUpstreams - prev.FullUpstreams,
		IncUpstreams:       s.IncUpstreams - prev.IncUpstreams,
		DegradedRecomputes: s.DegradedRecomputes - prev.DegradedRecomputes,
		DegradedUpstreams:  s.DegradedUpstreams - prev.DegradedUpstreams,
		CutoverRecomputes:  s.CutoverRecomputes - prev.CutoverRecomputes,
		CutoverUpstreams:   s.CutoverUpstreams - prev.CutoverUpstreams,
		ElectricalNodes:    s.ElectricalNodes - prev.ElectricalNodes,
		CouplingNodes:      s.CouplingNodes - prev.CouplingNodes,
		LoadsNodes:         s.LoadsNodes - prev.LoadsNodes,
		ArrivalNodes:       s.ArrivalNodes - prev.ArrivalNodes,
		UpstreamNodes:      s.UpstreamNodes - prev.UpstreamNodes,
	}
}

// Stats returns the accumulated evaluation-work counters.
func (e *Evaluator) Stats() EvalStats { return e.stats }

// ResetStats zeroes the evaluation-work counters.
func (e *Evaluator) ResetStats() { e.stats = EvalStats{} }

// dirtySet is a deduplicating node set: a membership bitmap plus the
// insertion-ordered list, both reusable across passes without reallocation.
type dirtySet struct {
	in   []bool
	list []int32
}

func (d *dirtySet) init(nn int) { d.in = make([]bool, nn) }

func (d *dirtySet) add(i int32) {
	if !d.in[i] {
		d.in[i] = true
		d.list = append(d.list, i)
	}
}

func (d *dirtySet) reset() {
	for _, i := range d.list {
		d.in[i] = false
	}
	d.list = d.list[:0]
}

// frontier is a reusable level-bucketed work queue for one cone walk.
// push may be called while a walk is in flight, but only from the
// coordinator (the serial phase between level barriers) and only in the
// walk's direction: backward walks push strictly lower levels, forward
// walks strictly higher, so a processed bucket is never revisited.
type frontier struct {
	inQ        []bool
	lvl        [][]int32
	minL, maxL int
}

func newFrontier(nLevels, nn int) *frontier {
	return &frontier{inQ: make([]bool, nn), lvl: make([][]int32, nLevels), minL: nLevels, maxL: -1}
}

func (f *frontier) push(lvl int, i int32) {
	if f.inQ[i] {
		return
	}
	f.inQ[i] = true
	f.lvl[lvl] = append(f.lvl[lvl], i)
	if lvl < f.minL {
		f.minL = lvl
	}
	if lvl > f.maxL {
		f.maxL = lvl
	}
}

// reset clears the bounds after a walk. The walk itself already cleared
// every inQ flag and truncated every visited bucket.
func (f *frontier) reset() {
	f.minL = len(f.lvl)
	f.maxL = -1
}

// Walk ops dispatched by the persistent walk body. Binding the body once
// in NewEvaluator (instead of a fresh closure per level) keeps the
// incremental passes allocation-free: a dirty-cone refresh runs thousands
// of tiny per-level regions per solve, and a heap-allocated closure per
// region dominated the profile before node visits did.
const (
	opElectrical uint8 = iota
	opCoupling
	opLoads
	opArrival
	opUpstream
)

// runWalk executes the selected per-node body over one frontier bucket
// through the installed Runner (inline without one). Every body writes
// only its own node's state — values plus the per-node change flag — so
// any partition is race-free and bit-identical.
func (e *Evaluator) runWalk(op uint8, nodes []int32) {
	e.walkOp, e.walkNodes = op, nodes
	if e.run == nil {
		e.walkBody(0, len(nodes))
	} else {
		e.run(0, len(nodes), e.walkBody)
	}
	e.walkNodes = nil
}

// bindWalkBody builds the one walk closure the evaluator ever allocates.
func (e *Evaluator) bindWalkBody() {
	e.walkBody = func(lo, hi int) {
		nodes := e.walkNodes
		switch e.walkOp {
		case opElectrical:
			for k := lo; k < hi; k++ {
				i := int(nodes[k])
				e.electricalRange(i, i+1)
			}
		case opCoupling:
			for k := lo; k < hi; k++ {
				j := int(nodes[k])
				old := e.CNbr[j]
				e.couplingRange(j, j+1)
				if e.CNbr[j] != old {
					e.chg[j] = chgPr
				}
			}
		case opLoads:
			for k := lo; k < hi; k++ {
				i := int(nodes[k])
				oldB, oldC, oldPr := e.B[i], e.C[i], e.CPr[i]
				e.loadsNode(i)
				var f uint8
				if e.B[i] != oldB {
					f |= chgB
				}
				if e.C[i] != oldC {
					f |= chgC
				}
				if e.CPr[i] != oldPr {
					f |= chgPr
				}
				e.chg[i] = f
			}
		case opArrival:
			for k := lo; k < hi; k++ {
				i := int(nodes[k])
				oldA := e.A[i]
				e.arrivalNode(i)
				if e.A[i] != oldA {
					e.chg[i] = 1
				}
			}
		case opUpstream:
			lambda, dst := e.walkLam, e.walkDst
			for k := lo; k < hi; k++ {
				i := int(nodes[k])
				old := dst[i]
				dst[i] = e.upstreamNode(i, lambda, dst)
				if dst[i] != old {
					e.chg[i] = 1
				}
			}
		}
	}
}

// Change flags recorded by the parallel bodies (own-index writes only) and
// consumed by the coordinator's serial propagation phase.
const (
	chgB  uint8 = 1 << iota // stage load B changed (read by wire fan-ins)
	chgC                    // delay load C changed (read by the node's own delay)
	chgPr                   // C′ or coupling sum changed (a Theorem-5 resize input)
)

// MarkDirty records that node i's size changed since the last evaluation,
// so the next incremental pass re-evaluates its cones. SetSize, SetSizes,
// and SetAllSizes call it automatically; callers that assign X directly
// must mark every changed node themselves (or run a full pass). Marks on
// non-sizable nodes are ignored. Must not be called concurrently with an
// evaluation pass.
func (e *Evaluator) MarkDirty(i int) {
	if !e.g.Comp(i).Kind.Sizable() {
		return
	}
	e.dirtyRec.add(int32(i))
	e.dirtyUp.add(int32(i))
}

// SetSize assigns node i the size v clamped to its bounds and returns the
// stored value, marking the node dirty when the stored size actually
// changes. Non-finite sizes and non-sizable nodes are rejected, matching
// SetSizes.
func (e *Evaluator) SetSize(i int, v float64) (float64, error) {
	c := e.g.Comp(i)
	if !c.Kind.Sizable() {
		return 0, fmt.Errorf("rc: SetSize on non-sizable %v node %d", c.Kind, i)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("rc: size for %v node %d is %g", c.Kind, i, v)
	}
	nv := math.Min(c.Hi, math.Max(c.Lo, v))
	if nv != e.X[i] {
		e.X[i] = nv
		e.MarkDirty(i)
	}
	return nv, nil
}

// coneWorthwhile reports whether a dirty set of the given size should walk
// cones at all. Each walked node costs roughly 2–3× a plain-loop node
// (old-value compares, flag bookkeeping, queue pushes), so once a large
// fraction of the circuit is dirty the full pass is cheaper even before
// the cones expand it further — and the full pass is bit-identical by
// construction, so the cutover is purely a scheduling decision.
func (e *Evaluator) coneWorthwhile(dirty int) bool {
	return dirty*8 <= e.g.NumNodes()-2
}

// RecomputeIncremental brings every derived quantity up to date with the
// size changes recorded since the last Recompute-family call, touching only
// the nodes those changes can reach. Results are bit-identical to a full
// Recompute: skipped nodes keep values computed from inputs that are
// bitwise unchanged, and re-run nodes execute the identical per-node
// bodies. changed lists the nodes whose Theorem-5 resize inputs (C′ or
// the coupling sum CNbr) changed — the reactivation feed for the solver's
// active-set sweep; it may contain duplicates, aliases internal state, and
// is valid until the next incremental call.
//
// cone reports whether the feed is exact. When no full pass has
// established the derived state yet, or the dirty set is so large that
// walking cones costs more than the plain loops (coneWorthwhile), the call
// degrades to a full Recompute — still bit-identical — and returns
// (nil, false): every value may have changed.
func (e *Evaluator) RecomputeIncremental() (changed []int32, cone bool) {
	if !e.recValid || !e.coneWorthwhile(len(e.dirtyRec.list)) {
		if e.recValid {
			e.stats.CutoverRecomputes++
		}
		e.stats.DegradedRecomputes++
		e.Recompute()
		return nil, false
	}
	e.stats.IncRecomputes++
	e.chgLoads = e.chgLoads[:0]
	dirty := e.dirtyRec.list
	if len(dirty) == 0 {
		return e.chgLoads, true
	}
	g := e.g

	// Electrical refresh of the changed nodes (independent bodies).
	e.runWalk(opElectrical, dirty)
	e.stats.ElectricalNodes += int64(len(dirty))

	// Coupling gather: CNbr of every neighbour of a changed node may move.
	// A full re-gather per neighbour keeps the accumulation order — and so
	// the bits — identical to the full pass.
	if e.cs.Len() > 0 {
		for _, d := range dirty {
			lo, hi := e.nbrOff[d], e.nbrOff[d+1]
			for _, j := range e.nbrIdx[lo:hi] {
				e.nbrSet.add(j)
			}
		}
		if nbrs := e.nbrSet.list; len(nbrs) > 0 {
			e.runWalk(opCoupling, nbrs)
			e.stats.CouplingNodes += int64(len(nbrs))
			for _, j := range nbrs {
				if e.chg[j] != 0 {
					e.chg[j] = 0
					e.chgLoads = append(e.chgLoads, j)
					e.frBack.push(g.Level(int(j)), j)
				}
			}
			e.nbrSet.reset()
		}
	}

	// Seed both walks: a changed node re-derives its own loads (wire C
	// carries x-terms) and delay (r changed); its fan-ins read its
	// capacitance. The source (node 0) stays outside every pass.
	for _, d := range dirty {
		e.frBack.push(g.Level(int(d)), d)
		e.frFwd.push(g.Level(int(d)), d)
		for _, p := range g.In(int(d)) {
			if p > 0 {
				e.frBack.push(g.Level(int(p)), p)
			}
		}
	}

	// Backward loads walk, levels descending. Pushes go strictly lower, so
	// re-reading minL each iteration picks up the growing frontier.
	for l := e.frBack.maxL; l >= e.frBack.minL; l-- {
		nodes := e.frBack.lvl[l]
		if len(nodes) == 0 {
			continue
		}
		e.runWalk(opLoads, nodes)
		e.stats.LoadsNodes += int64(len(nodes))
		for _, ii := range nodes {
			i := int(ii)
			e.frBack.inQ[i] = false
			f := e.chg[i]
			e.chg[i] = 0
			if f&chgC != 0 {
				e.frFwd.push(l, ii) // the node's own delay reads C
			}
			if f&chgPr != 0 {
				e.chgLoads = append(e.chgLoads, ii)
			}
			if f&chgB != 0 && g.Comp(i).Kind == circuit.Wire {
				for _, p := range g.In(i) {
					if p > 0 {
						e.frBack.push(g.Level(int(p)), p)
					}
				}
			}
		}
		e.frBack.lvl[l] = nodes[:0]
	}
	e.frBack.reset()

	// Forward delay/arrival walk, levels ascending; pushes go strictly
	// higher. The sink is folded afterwards exactly as in the full pass.
	sink := g.SinkID()
	for l := e.frFwd.minL; l <= e.frFwd.maxL; l++ {
		nodes := e.frFwd.lvl[l]
		if len(nodes) == 0 {
			continue
		}
		e.runWalk(opArrival, nodes)
		e.stats.ArrivalNodes += int64(len(nodes))
		for _, ii := range nodes {
			i := int(ii)
			e.frFwd.inQ[i] = false
			if e.chg[i] != 0 {
				e.chg[i] = 0
				for _, o := range g.Out(i) {
					if int(o) != sink {
						e.frFwd.push(g.Level(int(o)), o)
					}
				}
			}
		}
		e.frFwd.lvl[l] = nodes[:0]
	}
	e.frFwd.reset()
	e.finishSink()
	e.dirtyRec.reset()
	return e.chgLoads, true
}

// UpstreamResistanceIncremental updates dst for the size changes recorded
// since the last UpstreamResistance-family call, walking only the forward
// cones of the changed nodes. dst must hold the result of the immediately
// preceding upstream pass with the same lambda vector and this evaluator's
// then-current sizes — the walk re-derives exactly the entries the changes
// can reach and leaves every other entry untouched, so the combination is
// bit-identical to a full pass. changed lists the nodes whose dst entry
// moved (same aliasing and duplicate caveats as RecomputeIncremental);
// cone=false means the call degraded to a full pass — before any full
// evaluation, or past the coneWorthwhile cutover — and changed is nil.
func (e *Evaluator) UpstreamResistanceIncremental(lambda, dst []float64) (changed []int32, cone bool) {
	if !e.recValid || !e.coneWorthwhile(len(e.dirtyUp.list)) {
		if e.recValid {
			e.stats.CutoverUpstreams++
		}
		e.stats.DegradedUpstreams++
		e.UpstreamResistance(lambda, dst)
		return nil, false
	}
	e.stats.IncUpstreams++
	e.chgUp = e.chgUp[:0]
	dirty := e.dirtyUp.list
	if len(dirty) == 0 {
		return e.chgUp, true
	}
	g := e.g
	sink := g.SinkID()
	for _, d := range dirty {
		for _, o := range g.Out(int(d)) {
			if int(o) != sink { // fan-outs read λ_d·r_d
				e.frFwd.push(g.Level(int(o)), o)
			}
		}
	}
	for l := e.frFwd.minL; l <= e.frFwd.maxL; l++ {
		nodes := e.frFwd.lvl[l]
		if len(nodes) == 0 {
			continue
		}
		e.walkLam, e.walkDst = lambda, dst
		e.runWalk(opUpstream, nodes)
		e.stats.UpstreamNodes += int64(len(nodes))
		for _, ii := range nodes {
			i := int(ii)
			e.frFwd.inQ[i] = false
			if e.chg[i] != 0 {
				e.chg[i] = 0
				e.chgUp = append(e.chgUp, ii)
				if g.Comp(i).Kind == circuit.Wire {
					for _, o := range g.Out(i) {
						if int(o) != sink {
							e.frFwd.push(g.Level(int(o)), o)
						}
					}
				}
			}
		}
		e.frFwd.lvl[l] = nodes[:0]
	}
	e.frFwd.reset()
	e.dirtyUp.reset()
	e.walkLam, e.walkDst = nil, nil // never retain caller slices
	return e.chgUp, true
}
