package rc

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/coupling"
)

// Batch evaluates K replicas of one circuit in lockstep: all replicas
// share a single structural topology (the coupling CSR indices, the level
// buckets) and each owns a contiguous stripe set of per-node state carved
// from one slab. A replica's kernel dispatch goes through its own topo —
// identical to the shared one for NewBatch replicas, a derived
// constant-scaled one for NewScaledBatch replicas (scale.go) — so one
// batch can lockstep K differently-perturbed instances of one circuit. RecomputeAll and
// UpstreamResistanceAll advance any subset of replicas through ONE
// levelized pass — one Runner barrier per level total instead of one per
// level per replica — with the fused reverse pass visiting each node once
// for its electrical values, coupling gather, and stage loads.
//
// The determinism contract is absolute: a replica advanced by the batch
// passes is bit-identical to the same evaluator advanced solo, under any
// Runner and any replica subset. That holds by construction — the batch
// runs the identical per-node kernel bodies in the identical per-replica
// order (same fold orders, same pass structure), replica stripes are
// disjoint, and cross-replica grouping never crosses a data dependence.
// Replicas that retire from the subset (a converged lockstep solve) simply
// stop being visited; the survivors' bits cannot change, because no kernel
// reads another replica's state.
type Batch struct {
	t   *topo
	evs []*Evaluator
	run Runner
}

// NewBatch builds k replica evaluators over one shared topology, each
// initialized like NewEvaluator (sizes at the lower bounds). Replica state
// is laid out as contiguous stripes in one slab, so the lockstep inner
// loops walk dense memory.
func NewBatch(g *circuit.Graph, cs *coupling.Set, k int) (*Batch, error) {
	if k <= 0 {
		return nil, fmt.Errorf("rc: batch needs at least one replica, got %d", k)
	}
	t, err := buildTopo(g, cs)
	if err != nil {
		return nil, err
	}
	per := t.stripeArrays() * g.NumNodes()
	slab := make([]float64, k*per)
	b := &Batch{t: t, evs: make([]*Evaluator, k)}
	for r := 0; r < k; r++ {
		b.evs[r] = newEvaluatorOn(t, slab[r*per:(r+1)*per])
	}
	return b, nil
}

// Len returns the number of replicas.
func (b *Batch) Len() int { return len(b.evs) }

// Ev returns replica r's evaluator. It is a full Evaluator — solo calls
// (Recompute, SetSizes, the metric queries) work on it exactly as on a
// NewEvaluator-built one and are bit-identical to them; only its per-node
// state lives in the batch slab. The batch passes and solo calls on
// distinct replicas touch disjoint stripes, so they may run concurrently;
// a replica must not be advanced by both at once.
func (b *Batch) Ev(r int) *Evaluator { return b.evs[r] }

// SetRunner installs (or, with nil, removes) the executor for the batch
// passes. The replicas' own Runners are untouched: a lockstep solve keeps
// them nil so any solo evaluation a replica performs stays serial.
func (b *Batch) SetRunner(r Runner) { b.run = r }

// par runs fn over [lo, hi) through the batch Runner, or inline.
func (b *Batch) par(lo, hi int, fn func(lo, hi int)) {
	if b.run == nil {
		fn(lo, hi)
		return
	}
	b.run(lo, hi, fn)
}

// RecomputeAll refreshes every derived quantity of the listed replicas for
// their current sizes, charging each replica's work counters exactly as a
// solo full Recompute would. Without a Runner each replica runs the fused
// serial passes in sequence; with one, all replicas advance level by level
// together — each depth bucket becomes one parallel region of
// len(reps)·bucket nodes, one barrier per level total. Both schedules are
// bit-identical to per-replica solo Recomputes.
func (b *Batch) RecomputeAll(reps []int) {
	t := b.t
	nn := t.g.NumNodes()
	sink := t.g.SinkID()
	for _, r := range reps {
		b.evs[r].countFullRecompute()
	}
	if b.run == nil {
		for _, r := range reps {
			e := b.evs[r]
			st := &e.st
			for i := nn - 1; i >= 1; i-- {
				if i == sink {
					continue
				}
				e.t.kNodeBackward(st, i)
			}
			st.a[0] = 0
			for i := 1; i < nn; i++ {
				if i == sink {
					continue
				}
				e.t.kArrival(st, i)
			}
			e.t.kFinishSink(st)
		}
	} else {
		// Reverse pass, levels descending, all replicas per bucket. The
		// flat region index f maps to (replica reps[f/bl], node f%bl of the
		// bucket); any Runner partition of it is race-free — see
		// kNodeBackward.
		for l := t.numLevels() - 1; l >= 0; l-- {
			k0, k1 := int(t.lvlOff[l]), int(t.lvlOff[l+1])
			bl := k1 - k0
			if bl == 0 {
				continue
			}
			b.par(0, len(reps)*bl, func(lo, hi int) {
				for f := lo; f < hi; f++ {
					e := b.evs[reps[f/bl]]
					e.t.kNodeBackward(&e.st, int(t.lvlNodes[k0+f%bl]))
				}
			})
		}
		for _, r := range reps {
			b.evs[r].st.a[0] = 0
		}
		// Forward pass, levels ascending.
		for l := 0; l < t.numLevels(); l++ {
			k0, k1 := int(t.lvlOff[l]), int(t.lvlOff[l+1])
			bl := k1 - k0
			if bl == 0 {
				continue
			}
			b.par(0, len(reps)*bl, func(lo, hi int) {
				for f := lo; f < hi; f++ {
					e := b.evs[reps[f/bl]]
					e.t.kArrival(&e.st, int(t.lvlNodes[k0+f%bl]))
				}
			})
		}
		for _, r := range reps {
			e := b.evs[r]
			e.t.kFinishSink(&e.st)
		}
	}
	for _, r := range reps {
		b.evs[r].settleRecompute()
	}
}

// SweepAll advances the listed replicas through one full LRS-sweep pass
// pair — Recompute fused with UpstreamResistance — visiting each node's
// forward work once: the arrival and the upstream resistance of a node
// are computed in the same traversal, so a sweep costs one backward and
// one forward pass instead of one backward and two forward. Bit-identical
// to RecomputeAll followed by UpstreamResistanceAll: the arrival kernel
// reads only fan-in arrivals and the upstream kernel only fan-in
// resistances and dst entries — all strictly lower levels, finalized
// before the traversal reaches the node — and the per-node bodies and
// per-array visit orders are unchanged.
func (b *Batch) SweepAll(reps []int, lambdas, dsts [][]float64) {
	t := b.t
	nn := t.g.NumNodes()
	sink := t.g.SinkID()
	for _, r := range reps {
		b.evs[r].countFullRecompute()
		b.evs[r].countFullUpstream()
	}
	if b.run == nil {
		for n, r := range reps {
			e := b.evs[r]
			st := &e.st
			lambda, dst := lambdas[n], dsts[n]
			for i := nn - 1; i >= 1; i-- {
				if i == sink {
					continue
				}
				e.t.kNodeBackward(st, i)
			}
			st.a[0] = 0
			for i := range dst {
				dst[i] = 0
			}
			for i := 1; i < nn; i++ {
				if i == sink {
					continue
				}
				e.t.kArrival(st, i)
				if i < nn-1 {
					dst[i] = e.t.kUpstream(st, i, lambda, dst)
				}
			}
			e.t.kFinishSink(st)
		}
	} else {
		for l := t.numLevels() - 1; l >= 0; l-- {
			k0, k1 := int(t.lvlOff[l]), int(t.lvlOff[l+1])
			bl := k1 - k0
			if bl == 0 {
				continue
			}
			b.par(0, len(reps)*bl, func(lo, hi int) {
				for f := lo; f < hi; f++ {
					e := b.evs[reps[f/bl]]
					e.t.kNodeBackward(&e.st, int(t.lvlNodes[k0+f%bl]))
				}
			})
		}
		for _, r := range reps {
			b.evs[r].st.a[0] = 0
		}
		b.par(0, len(reps)*nn, func(lo, hi int) {
			for f := lo; f < hi; f++ {
				dsts[f/nn][f%nn] = 0
			}
		})
		// Fused forward pass: each level bucket computes its nodes'
		// arrivals and upstream resistances in one parallel region — both
		// kernels read strictly lower levels only, so a bucket never reads
		// what it writes.
		for l := 0; l < t.numLevels(); l++ {
			k0, k1 := int(t.lvlOff[l]), int(t.lvlOff[l+1])
			bl := k1 - k0
			if bl == 0 {
				continue
			}
			b.par(0, len(reps)*bl, func(lo, hi int) {
				for f := lo; f < hi; f++ {
					n := f / bl
					e := b.evs[reps[n]]
					i := int(t.lvlNodes[k0+f%bl])
					e.t.kArrival(&e.st, i)
					dsts[n][i] = e.t.kUpstream(&e.st, i, lambdas[n], dsts[n])
				}
			})
		}
		for _, r := range reps {
			e := b.evs[r]
			e.t.kFinishSink(&e.st)
		}
	}
	for _, r := range reps {
		b.evs[r].settleRecompute()
	}
}

// UpstreamResistanceAll fills dsts[n] with replica reps[n]'s weighted
// upstream resistances under the multipliers lambdas[n], exactly as a solo
// UpstreamResistance call per replica would — one forward levelized pass
// across all listed replicas, one barrier per level total.
func (b *Batch) UpstreamResistanceAll(reps []int, lambdas, dsts [][]float64) {
	t := b.t
	nn := t.g.NumNodes()
	for _, r := range reps {
		b.evs[r].countFullUpstream()
	}
	if b.run == nil {
		for n, r := range reps {
			e := b.evs[r]
			lambda, dst := lambdas[n], dsts[n]
			for i := 0; i < nn; i++ {
				dst[i] = 0
			}
			for i := 1; i < nn-1; i++ {
				dst[i] = e.t.kUpstream(&e.st, i, lambda, dst)
			}
		}
		return
	}
	b.par(0, len(reps)*nn, func(lo, hi int) {
		for f := lo; f < hi; f++ {
			dsts[f/nn][f%nn] = 0
		}
	})
	for l := 0; l < t.numLevels(); l++ {
		k0, k1 := int(t.lvlOff[l]), int(t.lvlOff[l+1])
		bl := k1 - k0
		if bl == 0 {
			continue
		}
		b.par(0, len(reps)*bl, func(lo, hi int) {
			for f := lo; f < hi; f++ {
				n := f / bl
				e := b.evs[reps[n]]
				i := int(t.lvlNodes[k0+f%bl])
				dsts[n][i] = e.t.kUpstream(&e.st, i, lambdas[n], dsts[n])
			}
		})
	}
}
