// Topology scaling: derived per-replica technology perturbations.
//
// A process corner or a Monte-Carlo sample is the same circuit under
// scaled technology constants — every effective resistance multiplied by
// one scalar, every capacitance (unit, fringe, fixed load, coupling) by
// another, and gate/driver resistances additionally by a threshold
// scalar (a higher threshold voltage weakens drive current, which this
// RC model sees as extra effective gate resistance). Deriving a scaled
// topo re-derives only the per-node constant arrays; everything
// structural — the graph, the kinds, the coupling CSR indices, the level
// buckets — is shared with the base topo, so K perturbed replicas cost K
// constant stripes, not K topologies, and a Batch over them can still
// schedule all replicas through one levelized pass.
//
// Determinism: the scaled arrays are scalar products of the base arrays
// in index order, so deriving the same Perturb from the same base topo
// always yields bit-identical constants — a perturbed replica solved in
// lockstep and a solo evaluator scaled with the same Perturb evaluate
// identically, bit for bit. The nominal Perturb multiplies by exactly
// 1.0, which is exact in floating point: a nominal scaled topo equals
// the base topo bitwise.
package rc

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/coupling"
)

// Perturb is one technology perturbation: scalar multipliers on the
// per-node constants of a topology. The zero value is invalid — use
// Nominal() for the identity perturbation.
type Perturb struct {
	// R multiplies every effective-resistance constant (wires, gates,
	// drivers).
	R float64
	// C multiplies every capacitance constant: unit capacitances,
	// fringes, fixed loads, and the coupling model (c̃, and with it ĉ and
	// the constant offset).
	C float64
	// Threshold additionally multiplies gate and driver resistances — the
	// threshold-voltage corner's drive-strength proxy. Wires are
	// unaffected.
	Threshold float64
}

// Nominal returns the identity perturbation.
func Nominal() Perturb { return Perturb{R: 1, C: 1, Threshold: 1} }

// IsNominal reports whether p is exactly the identity perturbation.
func (p Perturb) IsNominal() bool { return p == Nominal() }

// Validate rejects non-positive or non-finite scalars. NaN fails every
// ordered comparison, so the !(v > 0) form catches it alongside zero and
// negatives.
func (p Perturb) Validate() error {
	for _, f := range [...]struct {
		name string
		v    float64
	}{{"R", p.R}, {"C", p.C}, {"Threshold", p.Threshold}} {
		if !(f.v > 0) || math.IsInf(f.v, 0) {
			return fmt.Errorf("rc: perturbation scalar %s must be positive and finite, got %g", f.name, f.v)
		}
	}
	return nil
}

// scaled derives the perturbed topo: fresh per-node constant arrays
// (scalar products of the base arrays, index order), a scaled coupling
// set for the metric queries, and every structural array shared with t.
func (t *topo) scaled(p Perturb) (*topo, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.IsNominal() {
		return t, nil
	}
	nn := t.g.NumNodes()
	nt := &topo{
		g: t.g,
		// Shared structure.
		kind:     t.kind,
		coupled:  t.coupled,
		nbrOff:   t.nbrOff,
		nbrIdx:   t.nbrIdx,
		lvlOff:   t.lvlOff,
		lvlNodes: t.lvlNodes,
		// Re-derived constants.
		cUnit:  make([]float64, nn),
		fringe: make([]float64, nn),
		load:   make([]float64, nn),
		rcR:    make([]float64, nn),
	}
	for i := 0; i < nn; i++ {
		nt.cUnit[i] = p.C * t.cUnit[i]
		nt.fringe[i] = p.C * t.fringe[i]
		nt.load[i] = p.C * t.load[i]
		r := p.R
		if t.kind[i] == circuit.Gate || t.kind[i] == circuit.Driver {
			r *= p.Threshold
		}
		nt.rcR[i] = r * t.rcR[i]
	}
	cs, err := t.cs.Scaled(p.C)
	if err != nil {
		return nil, err
	}
	nt.cs = cs
	if t.coupled {
		nt.chat = make([]float64, nn)
		nt.ccst = make([]float64, nn)
		nt.nbrW = make([]float64, len(t.nbrW))
		for i := 0; i < nn; i++ {
			nt.chat[i] = p.C * t.chat[i]
			nt.ccst[i] = p.C * t.ccst[i]
		}
		for k := range t.nbrW {
			nt.nbrW[k] = p.C * t.nbrW[k]
		}
	}
	return nt, nil
}

// ScaledReplica returns a fresh solo evaluator over the receiver's
// topology perturbed by p, sharing every structural array (graph, CSR
// indices, level buckets) with the receiver and re-deriving only the
// per-node constants. Sizes start at the lower bounds, exactly like
// NewEvaluator; the receiver is untouched.
func (e *Evaluator) ScaledReplica(p Perturb) (*Evaluator, error) {
	t, err := e.t.scaled(p)
	if err != nil {
		return nil, err
	}
	return newEvaluatorOn(t, nil), nil
}

// NewScaledBatch builds one replica per perturbation over a single base
// topology: replica r evaluates under perturbs[r], with all structural
// arrays shared and replica stripes carved from one slab exactly like
// NewBatch. A nominal perturbation shares the base topo itself, so a
// NewScaledBatch over all-nominal perturbs is bit-for-bit a NewBatch.
func NewScaledBatch(g *circuit.Graph, cs *coupling.Set, perturbs []Perturb) (*Batch, error) {
	k := len(perturbs)
	if k == 0 {
		return nil, fmt.Errorf("rc: scaled batch needs at least one perturbation")
	}
	t, err := buildTopo(g, cs)
	if err != nil {
		return nil, err
	}
	per := t.stripeArrays() * g.NumNodes()
	slab := make([]float64, k*per)
	b := &Batch{t: t, evs: make([]*Evaluator, k)}
	for r := 0; r < k; r++ {
		rt, err := t.scaled(perturbs[r])
		if err != nil {
			return nil, fmt.Errorf("rc: replica %d: %w", r, err)
		}
		b.evs[r] = newEvaluatorOn(rt, slab[r*per:(r+1)*per])
	}
	return b, nil
}

// RCConst returns node i's effective-resistance constant tech.RC·r̂ᵢ as
// this evaluator's topology holds it — the base technology value for a
// plain evaluator, the scaled value for a perturbed replica. The solver
// reads its resize coefficients through this accessor so a perturbed
// replica is resized under its own technology.
func (e *Evaluator) RCConst(i int) float64 { return e.t.rcR[i] }
