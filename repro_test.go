package repro

import (
	"reflect"
	"strings"
	"testing"
)

const c17 = `INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func TestSyntheticC432EndToEnd(t *testing.T) {
	inst, err := Synthetic("c432")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Gates() != 214 || inst.Wires() != 426 {
		t.Fatalf("counts %d/%d, want 214/426", inst.Gates(), inst.Wires())
	}
	rep, err := inst.Optimize(inst.DefaultBounds())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("did not converge: %+v", rep)
	}
	if rep.Final.AreaUM2 >= rep.Initial.AreaUM2/2 {
		t.Errorf("area %g -> %g: expected large reduction", rep.Initial.AreaUM2, rep.Final.AreaUM2)
	}
	if rep.Final.NoisePF >= rep.Initial.NoisePF/2 {
		t.Errorf("noise %g -> %g: expected large reduction", rep.Initial.NoisePF, rep.Final.NoisePF)
	}
}

func TestSyntheticUnknownName(t *testing.T) {
	if _, err := Synthetic("c9999"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFromBenchC17(t *testing.T) {
	inst, err := FromBench("c17", strings.NewReader(c17), 17)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Gates() != 6 || inst.Wires() != 14 {
		t.Fatalf("counts %d/%d, want 6/14", inst.Gates(), inst.Wires())
	}
	init := inst.Initial()
	if init.DelayPs <= 0 || init.AreaUM2 <= 0 || init.PowerMW <= 0 {
		t.Fatalf("bad initial metrics: %+v", init)
	}
	rep, err := inst.Optimize(inst.DefaultBounds())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("c17 did not converge: gap %g", rep.Gap)
	}
	if rep.Final.DelayPs > inst.DefaultBounds().A0*1.02 {
		t.Errorf("delay %g misses bound %g", rep.Final.DelayPs, inst.DefaultBounds().A0)
	}
}

func TestFromBenchParseError(t *testing.T) {
	if _, err := FromBench("bad", strings.NewReader("garbage"), 1); err == nil {
		t.Fatal("garbage netlist accepted")
	}
}

// TestOptimizeWithWorkersIdentical pins the top-level guarantee: the
// parallel width is a pure performance knob — the report is bit-identical
// at every setting.
func TestOptimizeWithWorkersIdentical(t *testing.T) {
	run := func(workers int) *Report {
		inst, err := Synthetic("c432")
		if err != nil {
			t.Fatal(err)
		}
		rep, err := inst.OptimizeWith(inst.DefaultBounds(), workers)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := run(1)
	if parallel := run(4); !reflect.DeepEqual(serial, parallel) {
		t.Errorf("workers=4 report diverged from serial (area %.17g vs %.17g)",
			serial.Final.AreaUM2, parallel.Final.AreaUM2)
	}
}

// TestOptimizeBatch runs two instances concurrently and checks the reports
// match standalone serial solves.
func TestOptimizeBatch(t *testing.T) {
	build := func() []*Instance {
		var insts []*Instance
		for _, name := range []string{"c432", "c880"} {
			inst, err := Synthetic(name)
			if err != nil {
				t.Fatal(err)
			}
			insts = append(insts, inst)
		}
		return insts
	}
	reports, err := OptimizeBatch(build(), nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	for i, inst := range build() {
		want, err := inst.OptimizeWith(inst.DefaultBounds(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, reports[i]) {
			t.Errorf("batch report %d diverged from standalone solve", i)
		}
	}
	if _, err := OptimizeBatch(build(), make([]Bounds, 1), 0); err == nil {
		t.Error("mismatched bounds length accepted")
	}
}
