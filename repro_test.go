package repro

import (
	"strings"
	"testing"
)

const c17 = `INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func TestSyntheticC432EndToEnd(t *testing.T) {
	inst, err := Synthetic("c432")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Gates() != 214 || inst.Wires() != 426 {
		t.Fatalf("counts %d/%d, want 214/426", inst.Gates(), inst.Wires())
	}
	rep, err := inst.Optimize(inst.DefaultBounds())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("did not converge: %+v", rep)
	}
	if rep.Final.AreaUM2 >= rep.Initial.AreaUM2/2 {
		t.Errorf("area %g -> %g: expected large reduction", rep.Initial.AreaUM2, rep.Final.AreaUM2)
	}
	if rep.Final.NoisePF >= rep.Initial.NoisePF/2 {
		t.Errorf("noise %g -> %g: expected large reduction", rep.Initial.NoisePF, rep.Final.NoisePF)
	}
}

func TestSyntheticUnknownName(t *testing.T) {
	if _, err := Synthetic("c9999"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFromBenchC17(t *testing.T) {
	inst, err := FromBench("c17", strings.NewReader(c17), 17)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Gates() != 6 || inst.Wires() != 14 {
		t.Fatalf("counts %d/%d, want 6/14", inst.Gates(), inst.Wires())
	}
	init := inst.Initial()
	if init.DelayPs <= 0 || init.AreaUM2 <= 0 || init.PowerMW <= 0 {
		t.Fatalf("bad initial metrics: %+v", init)
	}
	rep, err := inst.Optimize(inst.DefaultBounds())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("c17 did not converge: gap %g", rep.Gap)
	}
	if rep.Final.DelayPs > inst.DefaultBounds().A0*1.02 {
		t.Errorf("delay %g misses bound %g", rep.Final.DelayPs, inst.DefaultBounds().A0)
	}
}

func TestFromBenchParseError(t *testing.T) {
	if _, err := FromBench("bad", strings.NewReader("garbage"), 1); err == nil {
		t.Fatal("garbage netlist accepted")
	}
}
