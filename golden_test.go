package repro

// Golden-fixture regression suite for the solver. Each fixture is a
// deterministic circuit + option set whose full core.Result (sizes,
// iteration count, dual value, every metric, the analytic memory
// footprint) is committed as JSON under testdata/golden/. The suite
// demands BITWISE equality: encoding/json emits float64 with the shortest
// round-trippable representation, so unmarshalling reproduces every bit
// and reflect.DeepEqual is an exact comparison. Any change to the
// numerical pipeline — intended or not — shows up as a diff here first.
//
// Refresh after an intended numerical change with:
//
//	go test -run TestGolden -update .
//
// and commit the rewritten JSON together with the change that explains it.
// The same fixtures also pin the parallel contract: every solve is re-run
// at Workers ∈ {2, 4, 8} and must match the Workers=1 result bit for bit,
// and the evaluator's levelized passes are cross-checked against the
// serial reference implementations on every fixture.

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/rc"
)

var update = flag.Bool("update", false, "rewrite the golden fixtures under testdata/golden/")

// goldenArch is the architecture the committed fixtures were generated on;
// update it together with the fixtures if they are ever regenerated
// elsewhere. The Workers-width comparisons are bitwise on every
// architecture — only the snapshot comparison is arch-sensitive (FMA).
const goldenArch = "amd64"

// goldenFixture builds one deterministic solver instance. build must
// return a fresh evaluator on every call (solves mutate sizes) plus the
// exact options for the run; Workers is set by the harness.
type goldenFixture struct {
	name  string
	build func(t *testing.T) (*rc.Evaluator, core.Options)
}

func c17Evaluator(t *testing.T) *bench.Instance {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "c17.bench"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nl, err := netlist.Parse("c17", f)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bench.AssembleNetlist(nl, 17, bench.PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func instanceFixture(spec string, maxIter int, pipe bench.PipelineOptions) func(t *testing.T) (*rc.Evaluator, core.Options) {
	return func(t *testing.T) (*rc.Evaluator, core.Options) {
		t.Helper()
		s, ok := bench.SpecByName(spec)
		if !ok {
			t.Fatalf("unknown spec %s", spec)
		}
		inst, err := bench.BuildInstance(s, pipe)
		if err != nil {
			t.Fatal(err)
		}
		b := bench.DeriveBounds(inst)
		opt := core.DefaultOptions(b.A0, b.NoiseBound, b.PowerBound)
		opt.MaxIterations = maxIter
		return inst.Eval, opt
	}
}

// gridFixture exercises the deep/wide synthetic mesh with couplings and
// per-net noise bounds — the constraint class the ISCAS fixtures don't hit.
func gridFixture(t *testing.T) (*rc.Evaluator, core.Options) {
	t.Helper()
	g, cs, err := bench.Grid(12, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	probe, err := rc.NewEvaluator(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	probe.SetAllSizes(1)
	probe.Recompute()
	a0 := probe.MaxArrival()
	probe.SetAllSizes(0.1)
	probe.Recompute()
	opt := core.DefaultOptions(a0, 1.6*probe.NoiseLinear()+cs.ConstantOffset(), 1.5*probe.TotalCap())
	opt.MaxIterations = 25
	opt.PerNetNoiseBounds = map[int]float64{}
	for i := 0; i < g.NumNodes() && len(opt.PerNetNoiseBounds) < 6; i++ {
		if g.Comp(i).Kind == circuit.Wire && len(cs.Neighbors(i)) > 0 {
			opt.PerNetNoiseBounds[i] = 1.4 * (probe.CHat[i]*probe.X[i] + probe.CNbr[i])
		}
	}
	ev, err := rc.NewEvaluator(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	return ev, opt
}

var goldenFixtures = []goldenFixture{
	{name: "c17", build: func(t *testing.T) (*rc.Evaluator, core.Options) {
		inst := c17Evaluator(t)
		b := bench.DeriveBounds(inst)
		opt := core.DefaultOptions(b.A0, b.NoiseBound, b.PowerBound)
		return inst.Eval, opt
	}},
	{name: "c432", build: instanceFixture("c432", 30, bench.PipelineOptions{})},
	{name: "c880", build: instanceFixture("c880", 20, bench.PipelineOptions{})},
	{name: "c432-global8x", build: instanceFixture("c432", 20, bench.PipelineOptions{WireLengthScale: 8})},
	{name: "grid12x10", build: gridFixture},
}

func solveGolden(t *testing.T, fx goldenFixture, workers int) *core.Result {
	t.Helper()
	ev, opt := fx.build(t)
	opt.Workers = workers
	sol, err := core.NewSolver(ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Close()
	res, err := sol.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGoldenFixtures is the regression gate: every fixture's serial result
// must match its committed snapshot bit for bit, and every parallel width
// must reproduce the serial result exactly.
func TestGoldenFixtures(t *testing.T) {
	for _, fx := range goldenFixtures {
		t.Run(fx.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", fx.name+".json")
			ref := solveGolden(t, fx, 1)
			if *update {
				data, err := json.MarshalIndent(ref, "", "\t")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test -run TestGolden -update .` to create)", err)
			}
			want := new(core.Result)
			if err := json.Unmarshal(data, want); err != nil {
				t.Fatal(err)
			}
			// The snapshot comparison is bitwise only on the architecture
			// that generated the fixtures: elsewhere the compiler may fuse
			// a·b+c into FMA (the Go spec permits it), shifting last-ulp
			// bits. The cross-width checks below stay bitwise everywhere —
			// one binary, one rounding behaviour.
			if runtime.GOARCH == goldenArch {
				if !reflect.DeepEqual(want, ref) {
					t.Errorf("Workers=1 result diverged from golden snapshot %s", path)
					reportResultDiff(t, want, ref)
				}
			} else if !resultsApproxEqual(want, ref) {
				t.Errorf("Workers=1 result diverged from golden snapshot %s beyond FMA tolerance (GOARCH=%s, fixtures from %s)",
					path, runtime.GOARCH, goldenArch)
				reportResultDiff(t, want, ref)
			}
			for _, w := range []int{2, 4, 8} {
				if res := solveGolden(t, fx, w); !reflect.DeepEqual(ref, res) {
					t.Errorf("Workers=%d diverged from Workers=1", w)
					reportResultDiff(t, ref, res)
				}
			}
		})
	}
}

// resultsApproxEqual compares two results allowing last-ulps FMA drift in
// every float while demanding exact integer/bool agreement. The relative
// tolerance is far below any real regression but far above fused-rounding
// noise.
func resultsApproxEqual(a, b *core.Result) bool {
	const tol = 1e-12
	eq := func(x, y float64) bool {
		d := math.Abs(x - y)
		return d <= tol*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	}
	if a.Iterations != b.Iterations || a.Converged != b.Converged ||
		a.LRSSweepsTotal != b.LRSSweepsTotal || a.MemoryBytes != b.MemoryBytes ||
		len(a.X) != len(b.X) {
		return false
	}
	for i := range a.X {
		if !eq(a.X[i], b.X[i]) {
			return false
		}
	}
	pairs := [][2]float64{
		{a.Gap, b.Gap}, {a.Dual, b.Dual}, {a.Area, b.Area},
		{a.DelayPs, b.DelayPs}, {a.PowerCapFF, b.PowerCapFF},
		{a.NoiseLinFF, b.NoiseLinFF}, {a.NoiseExact, b.NoiseExact},
		{a.DelayViolation, b.DelayViolation}, {a.PowerViolation, b.PowerViolation},
		{a.NoiseViolation, b.NoiseViolation}, {a.PerNetNoiseViolation, b.PerNetNoiseViolation},
	}
	for _, p := range pairs {
		if !eq(p[0], p[1]) {
			return false
		}
	}
	return true
}

func reportResultDiff(t *testing.T, want, got *core.Result) {
	t.Helper()
	if want.Iterations != got.Iterations {
		t.Errorf("  iterations %d vs %d", want.Iterations, got.Iterations)
	}
	for _, f := range []struct {
		name       string
		want, have float64
	}{
		{"Area", want.Area, got.Area},
		{"DelayPs", want.DelayPs, got.DelayPs},
		{"Dual", want.Dual, got.Dual},
		{"Gap", want.Gap, got.Gap},
		{"NoiseLinFF", want.NoiseLinFF, got.NoiseLinFF},
		{"PowerCapFF", want.PowerCapFF, got.PowerCapFF},
	} {
		if f.want != f.have {
			t.Errorf("  %s %.17g vs %.17g", f.name, f.want, f.have)
		}
	}
	for i := range want.X {
		if i < len(got.X) && want.X[i] != got.X[i] {
			t.Errorf("  first size mismatch at node %d: %.17g vs %.17g", i, want.X[i], got.X[i])
			break
		}
	}
}

// TestGoldenIncrementalMatchesFull re-solves every fixture with the
// Incremental escape hatch thrown (full Recompute/UpstreamResistance on
// every sweep, the paper's literal Figure 8) and demands the exact result
// the default dirty-cone/active-set path produced. Together with
// TestGoldenFixtures — whose snapshots the incremental default is compared
// against — this pins both execution modes to one bit pattern.
func TestGoldenIncrementalMatchesFull(t *testing.T) {
	for _, fx := range goldenFixtures {
		t.Run(fx.name, func(t *testing.T) {
			ref := solveGolden(t, fx, 1) // DefaultOptions: Incremental on
			ev, opt := fx.build(t)
			opt.Workers = 1
			opt.Incremental = false
			sol, err := core.NewSolver(ev, opt)
			if err != nil {
				t.Fatal(err)
			}
			defer sol.Close()
			full, err := sol.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, full) {
				t.Errorf("full-pass solve diverged from the incremental default")
				reportResultDiff(t, full, ref)
			}
		})
	}
}

// TestGoldenLevelizedMatchesSerial cross-checks, on every golden fixture's
// circuit, the levelized evaluator passes (as scheduled by the solver's
// worker pool at several widths) against the serial reference
// implementations — the acceptance contract of the levelization.
func TestGoldenLevelizedMatchesSerial(t *testing.T) {
	for _, fx := range goldenFixtures {
		t.Run(fx.name, func(t *testing.T) {
			ref, _ := fx.build(t)
			ref.SetAllSizes(1)
			ref.RecomputeSerial()
			lambda := make([]float64, len(ref.X))
			for i := range lambda {
				lambda[i] = 0.1 + float64(i%13)*0.25
			}
			refR := make([]float64, len(ref.X))
			ref.UpstreamResistanceSerial(lambda, refR)

			for _, w := range []int{1, 3, 8} {
				lv, opt := fx.build(t)
				opt.Workers = w
				sol, err := core.NewSolver(lv, opt) // installs the pool Runner
				if err != nil {
					t.Fatal(err)
				}
				lv.SetAllSizes(1)
				lv.Recompute()
				for i := range ref.X {
					if lv.B[i] != ref.B[i] || lv.C[i] != ref.C[i] || lv.CPr[i] != ref.CPr[i] ||
						lv.D[i] != ref.D[i] || lv.A[i] != ref.A[i] {
						sol.Close()
						t.Fatalf("Workers=%d: levelized Recompute diverged from serial at node %d", w, i)
					}
				}
				lvR := make([]float64, len(ref.X))
				lv.UpstreamResistance(lambda, lvR)
				for i := range refR {
					if lvR[i] != refR[i] {
						sol.Close()
						t.Fatalf("Workers=%d: levelized UpstreamResistance diverged at node %d: %.17g vs %.17g",
							w, i, lvR[i], refR[i])
					}
				}
				sol.Close()
			}
		})
	}
}
